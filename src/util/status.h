#ifndef THEMIS_UTIL_STATUS_H_
#define THEMIS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace themis {

/// Error categories used across the library. Mirrors the usual
/// database-system status taxonomy (Arrow/RocksDB style): code + message,
/// no exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kNotConverged,
  kParseError,
  kInternal,
  kUnimplemented,
  kIoError,
  kResourceExhausted,
  kDeadlineExceeded,
  kCancelled,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName — how the serving wire protocol maps a status
/// name back to its code. Unrecognized names map to kInternal (a forward-
/// compatible client never crashes on a code it does not know).
StatusCode StatusCodeFromName(const std::string& name);

/// A success-or-error result of an operation. Cheap to copy on the OK path
/// (no allocation); error path carries a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Modeled after
/// absl::StatusOr / arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit from value and from error status, so functions can
  /// `return value;` or `return Status::...;` directly.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Status from an expression, `return` on failure.
#define THEMIS_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::themis::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Assigns the value of a Result expression to `lhs` or propagates the error.
#define THEMIS_ASSIGN_OR_RETURN(lhs, rexpr)            \
  THEMIS_ASSIGN_OR_RETURN_IMPL(                        \
      THEMIS_STATUS_CONCAT(_result_, __LINE__), lhs, rexpr)

#define THEMIS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define THEMIS_STATUS_CONCAT_INNER(a, b) a##b
#define THEMIS_STATUS_CONCAT(a, b) THEMIS_STATUS_CONCAT_INNER(a, b)

}  // namespace themis

#endif  // THEMIS_UTIL_STATUS_H_
