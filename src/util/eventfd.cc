#include "util/eventfd.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>

namespace themis {
namespace util {

EventFd::EventFd() {
  fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
}

EventFd::~EventFd() {
  if (fd_ >= 0) ::close(fd_);
}

void EventFd::Signal() {
  if (fd_ < 0) return;
  const uint64_t one = 1;
  for (;;) {
    ssize_t n = ::write(fd_, &one, sizeof(one));
    if (n >= 0) return;
    if (errno == EINTR) continue;
    // EAGAIN: counter is at max — a wakeup is already pending.
    return;
  }
}

void EventFd::Drain() {
  if (fd_ < 0) return;
  uint64_t value = 0;
  for (;;) {
    ssize_t n = ::read(fd_, &value, sizeof(value));
    if (n >= 0) return;
    if (errno == EINTR) continue;
    return;  // EAGAIN: already drained.
  }
}

}  // namespace util
}  // namespace themis
