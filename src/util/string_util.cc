#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace themis {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view s, std::string_view t) {
  if (s.size() != t.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(t[i]))) {
      return false;
    }
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> SplitCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace themis
