#ifndef THEMIS_UTIL_RANDOM_H_
#define THEMIS_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace themis {

/// Deterministic random source used across the library. All experiment
/// harnesses take an explicit seed so results are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    THEMIS_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal draw.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Zipf-like draw over {0, .., n-1} with skew s via inverse-CDF on
  /// precomputed weights is expensive; this uses rejection-free sampling on
  /// harmonic weights computed on the fly for small n, so callers with large
  /// domains should precompute a Categorical instead.
  int64_t Zipf(int64_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights need not be normalized; they must be non-negative with a
  /// positive sum.
  size_t Categorical(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Precomputed alias-free categorical sampler (cumulative distribution +
/// binary search). Suitable for repeated draws from a fixed distribution.
class CategoricalSampler {
 public:
  /// `weights` must be non-negative with positive sum.
  explicit CategoricalSampler(const std::vector<double>& weights);

  /// Draws one index.
  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative weights, back() == 1.0
};

}  // namespace themis

#endif  // THEMIS_UTIL_RANDOM_H_
