#ifndef THEMIS_UTIL_TIMER_H_
#define THEMIS_UTIL_TIMER_H_

#include <chrono>

namespace themis {

/// Wall-clock stopwatch used by the benchmark harnesses to report solver
/// and query times.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace themis

#endif  // THEMIS_UTIL_TIMER_H_
