#ifndef THEMIS_UTIL_CANCEL_H_
#define THEMIS_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.h"

namespace themis {
namespace util {

/// Cooperative cancellation handle for a single request. The serving layer
/// constructs one per admitted request (optionally with an absolute
/// deadline); the executor polls `Check()` once per shard/chunk in its hot
/// loops and unwinds with kCancelled / kDeadlineExceeded when it fires.
///
/// Thread-safety: `Cancel()` and `Check()` may race freely (the flag is a
/// single atomic). The deadline is immutable after construction, so readers
/// never synchronize on it.
class CancelToken {
 public:
  /// A token with no deadline; fires only via Cancel().
  CancelToken() = default;

  /// A token that also expires `deadline_ms` milliseconds from now.
  /// `deadline_ms == 0` means no deadline.
  explicit CancelToken(uint64_t deadline_ms) {
    if (deadline_ms > 0) {
      has_deadline_ = true;
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms);
    }
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Marks the token cancelled (e.g. the client disconnected). Idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// OK while the request should keep running. Explicit cancellation wins
  /// over deadline expiry so a disconnected client reports kCancelled even
  /// when its deadline has also lapsed.
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("request cancelled");
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    return Status::OK();
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

/// Null-safe poll: the executor threads a `const CancelToken*` that is
/// nullptr for in-process callers with no deadline.
inline Status CheckCancel(const CancelToken* token) {
  return token == nullptr ? Status::OK() : token->Check();
}

}  // namespace util
}  // namespace themis

#endif  // THEMIS_UTIL_CANCEL_H_
