#ifndef THEMIS_UTIL_CANCEL_H_
#define THEMIS_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "util/status.h"

namespace themis {
namespace util {

/// Deadline sentinel: "no deadline", in steady-clock nanoseconds.
inline constexpr int64_t kNoDeadlineNs = std::numeric_limits<int64_t>::max();

/// The steady clock as an int64 nanosecond count — the representation
/// CancelToken and FlightToken share so deadlines compose with atomic
/// max() arithmetic.
inline int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Cooperative cancellation handle for a single request. The serving layer
/// constructs one per admitted request (optionally with an absolute
/// deadline); the executor polls `Check()` once per shard/chunk in its hot
/// loops and unwinds with kCancelled / kDeadlineExceeded when it fires.
///
/// `Check()` is virtual so the single-flight layer can substitute a
/// FlightToken whose verdict is derived from a whole group of attached
/// requests (see util/single_flight.h) without the executor loops knowing.
///
/// Thread-safety: `Cancel()` and `Check()` may race freely (the flag is a
/// single atomic). The deadline is immutable after construction, so readers
/// never synchronize on it.
class CancelToken {
 public:
  /// A token with no deadline; fires only via Cancel().
  CancelToken() = default;

  /// A token that also expires `deadline_ms` milliseconds from now.
  /// `deadline_ms == 0` means no deadline.
  explicit CancelToken(uint64_t deadline_ms) {
    if (deadline_ms > 0) {
      deadline_ns_ = SteadyNowNs() +
                     static_cast<int64_t>(deadline_ms) * 1'000'000;
    }
  }

  virtual ~CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Marks the token cancelled (e.g. the client disconnected). Idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// OK while the request should keep running. Explicit cancellation wins
  /// over deadline expiry so a disconnected client reports kCancelled even
  /// when its deadline has also lapsed.
  virtual Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("request cancelled");
    }
    if (deadline_ns_ != kNoDeadlineNs && SteadyNowNs() >= deadline_ns_) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    return Status::OK();
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Absolute deadline in steady-clock nanoseconds; kNoDeadlineNs when the
  /// token has none. Immutable after construction.
  int64_t deadline_ns() const { return deadline_ns_; }

 private:
  std::atomic<bool> cancelled_{false};
  int64_t deadline_ns_ = kNoDeadlineNs;
};

/// Null-safe poll: the executor threads a `const CancelToken*` that is
/// nullptr for in-process callers with no deadline.
inline Status CheckCancel(const CancelToken* token) {
  return token == nullptr ? Status::OK() : token->Check();
}

}  // namespace util
}  // namespace themis

#endif  // THEMIS_UTIL_CANCEL_H_
