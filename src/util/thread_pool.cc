#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace themis::util {

size_t DefaultParallelism() {
  if (const char* env = std::getenv("THEMIS_NUM_THREADS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

size_t ResolveParallelism(size_t requested) {
  return requested > 0 ? requested : DefaultParallelism();
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = ResolveParallelism(num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t total = end - begin;
  if (total == 1) {
    fn(begin);
    return;
  }

  // Shared claim/completion state. Helper tasks may fire after ParallelFor
  // returned (when the caller claimed every shard first), so it lives on
  // the heap and helpers touch `fn` only after successfully claiming a
  // shard — every claimed shard finishes before `done` reaches `total`,
  // which is what the caller blocks on.
  struct State {
    std::atomic<size_t> next;
    std::atomic<size_t> done{0};
    std::mutex error_mu;
    size_t error_index;
    std::exception_ptr error;
    std::mutex wait_mu;
    std::condition_variable wait_cv;
    explicit State(size_t begin) : next(begin) {}
  };
  auto state = std::make_shared<State>(begin);
  const std::function<void(size_t)>* fn_ptr = &fn;

  auto claim_loop = [state, end, total, fn_ptr] {
    for (size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
         i < end; i = state->next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        (*fn_ptr)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mu);
        if (state->error == nullptr || i < state->error_index) {
          state->error = std::current_exception();
          state->error_index = i;
        }
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        // Last shard: wake a caller blocked past its own claim loop. The
        // empty critical section orders this notify after the waiter's
        // predicate check, so the wakeup cannot be lost.
        { std::lock_guard<std::mutex> lock(state->wait_mu); }
        state->wait_cv.notify_all();
      }
    }
  };

  // The caller counts toward the parallelism, so a 1-thread pool runs the
  // whole range inline — genuinely sequential execution.
  const size_t helpers = std::min(num_threads() - 1, total - 1);
  for (size_t h = 0; h < helpers; ++h) Enqueue(claim_loop);

  // The caller participates, then helps with unrelated queued work while
  // claimed-but-unfinished shards drain on other threads; with an empty
  // queue it parks on the condition variable instead of spinning.
  claim_loop();
  using namespace std::chrono_literals;
  while (state->done.load(std::memory_order_acquire) < total) {
    if (!RunOneTask()) {
      std::unique_lock<std::mutex> lock(state->wait_mu);
      state->wait_cv.wait_for(lock, 200us, [&] {
        return state->done.load(std::memory_order_acquire) >= total;
      });
    }
  }

  if (state->error != nullptr) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(DefaultParallelism());
  return *pool;
}

ThreadPool* ResolvePool(ThreadPool* pool, size_t num_threads,
                        std::unique_ptr<ThreadPool>& owned) {
  if (pool != nullptr) return pool;
  if (num_threads > 0) {
    owned = std::make_unique<ThreadPool>(num_threads);
    return owned.get();
  }
  return &ThreadPool::Default();
}

}  // namespace themis::util
