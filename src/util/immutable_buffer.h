#ifndef THEMIS_UTIL_IMMUTABLE_BUFFER_H_
#define THEMIS_UTIL_IMMUTABLE_BUFFER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>

namespace themis::util {

/// A refcounted handle to immutable bytes: once constructed, the payload
/// can never change, so any number of threads may read it and any number
/// of per-session output queues may hold it without copying. Backs the
/// serving layer's response byte cache — one encoded wire line is shared
/// between the cache and every session flushing it.
///
/// A default-constructed buffer is "null" (operator bool is false) and
/// distinct from an empty one; str()/data() require a non-null buffer.
class ImmutableBuffer {
 public:
  ImmutableBuffer() = default;
  explicit ImmutableBuffer(std::string bytes)
      : bytes_(std::make_shared<const std::string>(std::move(bytes))) {}

  explicit operator bool() const { return bytes_ != nullptr; }

  const char* data() const { return bytes_->data(); }
  size_t size() const { return bytes_ == nullptr ? 0 : bytes_->size(); }
  const std::string& str() const { return *bytes_; }

  void reset() { bytes_.reset(); }

 private:
  std::shared_ptr<const std::string> bytes_;
};

}  // namespace themis::util

#endif  // THEMIS_UTIL_IMMUTABLE_BUFFER_H_
