#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace themis {

int64_t Rng::Zipf(int64_t n, double s) {
  THEMIS_DCHECK(n > 0);
  std::vector<double> weights(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    weights[static_cast<size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  return static_cast<int64_t>(Categorical(weights));
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  THEMIS_DCHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    THEMIS_DCHECK(w >= 0);
    total += w;
  }
  THEMIS_DCHECK(total > 0);
  double r = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

CategoricalSampler::CategoricalSampler(const std::vector<double>& weights) {
  THEMIS_CHECK(!weights.empty());
  cdf_.resize(weights.size());
  double total = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    THEMIS_CHECK(weights[i] >= 0);
    total += weights[i];
    cdf_[i] = total;
  }
  THEMIS_CHECK(total > 0);
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

size_t CategoricalSampler::Sample(Rng& rng) const {
  double r = rng.UniformDouble();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), r);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace themis
