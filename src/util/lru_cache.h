#ifndef THEMIS_UTIL_LRU_CACHE_H_
#define THEMIS_UTIL_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace themis {

/// Least-recently-used map with an optional capacity bound (0 = unbounded).
/// Backs the inference-engine memo table and the SQL plan cache. Not
/// thread-safe: callers that share an instance across threads hold their
/// own lock around Get/Put.
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity = 0) : capacity_(capacity) {}

  /// Returns the cached value and marks the entry most-recently used.
  std::optional<V> Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites `key`, then evicts least-recently-used entries
  /// until the capacity bound holds again.
  void Put(const K& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    while (capacity_ > 0 && order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  size_t size() const { return order_.size(); }
  size_t capacity() const { return capacity_; }

  /// Entries dropped by the capacity bound since construction or Clear().
  size_t evictions() const { return evictions_; }

  void Clear() {
    order_.clear();
    index_.clear();
    evictions_ = 0;
  }

 private:
  size_t capacity_;
  size_t evictions_ = 0;
  std::list<std::pair<K, V>> order_;
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      index_;
};

}  // namespace themis

#endif  // THEMIS_UTIL_LRU_CACHE_H_
