#ifndef THEMIS_UTIL_LRU_CACHE_H_
#define THEMIS_UTIL_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace themis {

/// Least-recently-used map with an optional capacity bound (0 = unbounded).
/// Backs the inference-engine memo table, the SQL plan cache, and the
/// plan->result memo. Not thread-safe: callers that share an instance
/// across threads hold their own lock around Get/Put.
///
/// Capacity is expressed in *cost units*: with the default Put cost of 1
/// the bound is an entry count; callers that pass per-entry costs (e.g.
/// approximate bytes of a marginal table) get cost-aware admission —
/// eviction frees enough total cost, and an entry costlier than the whole
/// capacity is rejected outright instead of wiping the cache.
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity = 0) : capacity_(capacity) {}

  /// Returns the cached value and marks the entry most-recently used.
  std::optional<V> Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->value;
  }

  /// Inserts or overwrites `key` at the given cost, then evicts
  /// least-recently-used entries until the capacity bound holds again.
  /// Returns false when the entry alone exceeds the capacity and was not
  /// admitted (the cache is left untouched apart from dropping any stale
  /// entry under the same key).
  bool Put(const K& key, V value, size_t cost = 1) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      total_cost_ -= it->second->cost;
      order_.erase(it->second);
      index_.erase(it);
    }
    if (capacity_ > 0 && cost > capacity_) {
      ++rejections_;
      return false;
    }
    order_.push_front(Entry{key, std::move(value), cost});
    index_[key] = order_.begin();
    total_cost_ += cost;
    EvictToCapacity();
    return true;
  }

  size_t size() const { return order_.size(); }
  size_t capacity() const { return capacity_; }

  /// Rebounds the cache in place: growing keeps every resident entry,
  /// shrinking evicts least-recently-used entries until the new bound
  /// holds (counted in evictions()). Lets a catalog re-inflate surviving
  /// relations' cache shares when a neighbor is dropped, without losing
  /// the warm entries.
  void set_capacity(size_t capacity) {
    capacity_ = capacity;
    EvictToCapacity();
  }

  /// Sum of the admitted entries' costs (= size() under unit costs).
  size_t total_cost() const { return total_cost_; }

  /// Entries dropped by the capacity bound since construction or Clear().
  size_t evictions() const { return evictions_; }

  /// Entries refused admission because their cost alone exceeded capacity.
  size_t rejections() const { return rejections_; }

  /// Erases every entry matching `pred(key, value)`, returning how many
  /// were dropped (counted in evictions() — from the caller's view a
  /// predicate erase is a forced eviction, e.g. invalidating one
  /// relation's entries out of a shared response cache). O(size).
  template <typename Pred>
  size_t EraseIf(const Pred& pred) {
    size_t erased = 0;
    for (auto it = order_.begin(); it != order_.end();) {
      if (pred(it->key, it->value)) {
        total_cost_ -= it->cost;
        index_.erase(it->key);
        it = order_.erase(it);
        ++erased;
        ++evictions_;
      } else {
        ++it;
      }
    }
    return erased;
  }

  void Clear() {
    order_.clear();
    index_.clear();
    total_cost_ = 0;
    evictions_ = 0;
    rejections_ = 0;
  }

 private:
  struct Entry {
    K key;
    V value;
    size_t cost;
  };

  /// Drops least-recently-used entries until the capacity bound holds.
  void EvictToCapacity() {
    while (capacity_ > 0 && total_cost_ > capacity_) {
      total_cost_ -= order_.back().cost;
      index_.erase(order_.back().key);
      order_.pop_back();
      ++evictions_;
    }
  }

  size_t capacity_;
  size_t total_cost_ = 0;
  size_t evictions_ = 0;
  size_t rejections_ = 0;
  std::list<Entry> order_;
  std::unordered_map<K, typename std::list<Entry>::iterator, Hash> index_;
};

}  // namespace themis

#endif  // THEMIS_UTIL_LRU_CACHE_H_
