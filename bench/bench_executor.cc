// Code-native executor micro-bench: the vectorized pipeline (selection
// vectors, packed group/join keys, flat aggregation) against the retained
// row-at-a-time reference path on ~1M-row scans and joins. Every answer —
// sequential and pooled at sizes 1/2/hw — is bitwise-checked against the
// reference at the same configuration before anything is timed; any
// divergence aborts.
//
//   ./bench_executor [rounds] [--smoke] [--strict]
//
// The acceptance bar is a >= 2x sequential speedup on the 1M-row GROUP BY
// scan; --strict turns the bar into the exit code (without it timing
// stays informational — wall-clock gates flake on noisy shared runners).
// --smoke shrinks the tables for CI: correctness everywhere, timing as a
// sanity print.
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common.h"

#include "data/table.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace themis::bench {
namespace {

void CheckIdentical(const sql::QueryResult& a, const sql::QueryResult& b,
                    const std::string& what) {
  THEMIS_CHECK(a.rows.size() == b.rows.size()) << what;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    THEMIS_CHECK(a.rows[i].group == b.rows[i].group) << what;
    // Bitwise double equality, not approximate.
    THEMIS_CHECK(a.rows[i].values == b.rows[i].values) << what;
  }
}

std::vector<std::string> Labels(const std::string& prefix, size_t n) {
  std::vector<std::string> labels;
  labels.reserve(n);
  for (size_t i = 0; i < n; ++i) labels.push_back(prefix + std::to_string(i));
  return labels;
}

int Run(size_t rounds, bool smoke, bool strict) {
  PrintHeader("Code-native executor micro-bench",
              "vectorized vs row-at-a-time reference, bitwise-checked");
  const size_t t_rows = smoke ? 120000 : 1000000;
  const size_t b_rows = smoke ? 10000 : 50000;

  // Scan table: group columns g/d, numeric v, filter column f, join key k.
  // Weights are multiples of 0.25 so sums are exact and every shard
  // layout agrees with the sequential answer bit for bit.
  auto t_schema = std::make_shared<data::Schema>();
  t_schema->AddAttribute("g", Labels("g", 32));
  t_schema->AddAttribute("d", Labels("d", 24));
  t_schema->AddAttribute("v", Labels("", 64));
  t_schema->AddAttribute("f", Labels("f", 8));
  t_schema->AddAttribute("k", Labels("k", 4096));
  data::Table t(t_schema);
  std::mt19937_64 rng(42);
  for (size_t r = 0; r < t_rows; ++r) {
    t.AppendRow({static_cast<data::ValueCode>(rng() % 32),
                 static_cast<data::ValueCode>(rng() % 24),
                 static_cast<data::ValueCode>(rng() % 64),
                 static_cast<data::ValueCode>(rng() % 8),
                 static_cast<data::ValueCode>(rng() % 4096)});
    t.set_weight(r, static_cast<double>(rng() % 16) * 0.25 + 0.25);
  }
  // Build-side table: its key domain is a distinct Domain object with the
  // same labels, so the probe path exercises the code translation.
  auto b_schema = std::make_shared<data::Schema>();
  b_schema->AddAttribute("kb", Labels("k", 4096));
  b_schema->AddAttribute("h", Labels("h", 16));
  data::Table b(b_schema);
  for (size_t r = 0; r < b_rows; ++r) {
    b.AppendRow({static_cast<data::ValueCode>(rng() % 4096),
                 static_cast<data::ValueCode>(rng() % 16)});
    b.set_weight(r, static_cast<double>(rng() % 8) * 0.25 + 0.5);
  }
  sql::Executor executor;
  executor.RegisterTable("t", &t);
  executor.RegisterTable("b", &b);
  std::printf("  t: %zu rows, b: %zu rows, %zu timing rounds\n", t_rows,
              b_rows, rounds);

  struct Case {
    const char* name;
    std::string sql;
    bool gated;  // carries the >= 2x acceptance bar
  };
  const std::vector<Case> cases = {
      {"group-by scan",
       "SELECT g, d, COUNT(*), SUM(v), AVG(v) FROM t GROUP BY g, d", true},
      {"filtered scan",
       "SELECT g, COUNT(*), SUM(v) FROM t "
       "WHERE f IN ('f1', 'f3', 'f5') AND v < 40 GROUP BY g",
       false},
      {"hash join",
       "SELECT h, COUNT(*) FROM b x, t y WHERE x.kb = y.k GROUP BY h",
       false},
  };

  const size_t hw = std::max<size_t>(2, std::thread::hardware_concurrency());
  std::vector<std::unique_ptr<util::ThreadPool>> pools;
  for (const size_t threads : {size_t{1}, size_t{2}, hw}) {
    pools.push_back(std::make_unique<util::ThreadPool>(threads));
  }

  double gated_speedup = 0;
  for (const Case& c : cases) {
    auto stmt = sql::Parse(c.sql);
    THEMIS_CHECK(stmt.ok()) << c.sql;

    // Correctness first: vectorized == reference, sequential and at every
    // pool size (and — exact weights — every layout == sequential).
    auto reference = executor.ExecuteReference(*stmt);
    THEMIS_CHECK(reference.ok()) << reference.status().ToString();
    auto vectorized = executor.Execute(*stmt);
    THEMIS_CHECK(vectorized.ok()) << vectorized.status().ToString();
    CheckIdentical(*vectorized, *reference, std::string(c.name) + " seq");
    for (const auto& pool : pools) {
      const std::string what =
          std::string(c.name) + " pool " + std::to_string(pool->num_threads());
      auto ref_pooled = executor.ExecuteReference(*stmt, pool.get());
      THEMIS_CHECK(ref_pooled.ok()) << what;
      auto vec_pooled = executor.Execute(*stmt, pool.get());
      THEMIS_CHECK(vec_pooled.ok()) << what;
      CheckIdentical(*vec_pooled, *ref_pooled, what + " vs reference");
      CheckIdentical(*vec_pooled, *reference, what + " vs sequential");
    }

    // Timing: sequential reference vs sequential vectorized (the tentpole
    // bar), plus the pooled vectorized scan for context.
    Timer timer;
    for (size_t r = 0; r < rounds; ++r) {
      THEMIS_CHECK(executor.ExecuteReference(*stmt).ok());
    }
    const double ref_seconds = timer.Seconds() / rounds;
    timer.Restart();
    for (size_t r = 0; r < rounds; ++r) {
      THEMIS_CHECK(executor.Execute(*stmt).ok());
    }
    const double vec_seconds = timer.Seconds() / rounds;
    timer.Restart();
    for (size_t r = 0; r < rounds; ++r) {
      THEMIS_CHECK(executor.Execute(*stmt, pools.back().get()).ok());
    }
    const double pooled_seconds = timer.Seconds() / rounds;

    const double speedup = vec_seconds > 0 ? ref_seconds / vec_seconds : 0;
    if (c.gated) gated_speedup = speedup;
    std::printf(
        "  %-14s reference %7.1f ms   vectorized %7.1f ms (%.1fx)   "
        "pooled(%zu) %7.1f ms\n",
        c.name, ref_seconds * 1e3, vec_seconds * 1e3, speedup, hw,
        pooled_seconds * 1e3);
  }

  std::printf("  all answers bitwise-identical to the reference path: yes\n");
  std::printf("  group-by scan sequential speedup: %.2fx %s\n", gated_speedup,
              gated_speedup >= 2.0 ? "(>= 2x: vectorization win demonstrated)"
                                   : "(below the 2x bar)");
  return (strict && gated_speedup < 2.0) ? 1 : 0;
}

}  // namespace
}  // namespace themis::bench

int main(int argc, char** argv) {
  size_t rounds = 3;
  bool smoke = false;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      rounds = static_cast<size_t>(std::strtoul(argv[i], nullptr, 10));
    }
  }
  if (rounds == 0) rounds = 1;
  return themis::bench::Run(rounds, smoke, strict);
}
