// Code-native executor micro-bench: the vectorized pipeline (selection
// vectors, packed group/join keys, flat aggregation) against the retained
// row-at-a-time reference path on ~1M-row scans and joins. A second
// executor pinned to the scalar SIMD backend runs everything too, so each
// answer — sequential and pooled at sizes 1/2/hw — is three-way
// bitwise-checked (simd == scalar == reference) before anything is timed;
// any divergence aborts.
//
//   ./bench_executor [rounds] [--smoke] [--strict] [--json PATH]
//
// The acceptance bar is a >= 2x sequential speedup on the 1M-row GROUP BY
// scan; --strict turns the bar into the exit code (without it timing
// stays informational — wall-clock gates flake on noisy shared runners).
// --smoke shrinks the tables for CI: correctness everywhere, timing as a
// sanity print. --json writes a machine-readable snapshot whose "gate"
// object holds the ratios tools/check_bench.py compares across runs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common.h"

#include "data/table.h"
#include "server/wire.h"
#include "simd/simd.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "util/cpu_topology.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace themis::bench {
namespace {

void CheckIdentical(const sql::QueryResult& a, const sql::QueryResult& b,
                    const std::string& what) {
  THEMIS_CHECK(a.rows.size() == b.rows.size()) << what;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    THEMIS_CHECK(a.rows[i].group == b.rows[i].group) << what;
    // Bitwise double equality, not approximate.
    THEMIS_CHECK(a.rows[i].values == b.rows[i].values) << what;
  }
}

std::vector<std::string> Labels(const std::string& prefix, size_t n) {
  std::vector<std::string> labels;
  labels.reserve(n);
  for (size_t i = 0; i < n; ++i) labels.push_back(prefix + std::to_string(i));
  return labels;
}

/// Constructs an executor with THEMIS_SIMD pinned to `backend` for the
/// duration of construction (the kernel table is snapshotted there).
std::unique_ptr<sql::Executor> MakePinnedExecutor(const char* backend) {
  const char* prev = std::getenv("THEMIS_SIMD");
  const std::string saved = prev ? prev : "";
  setenv("THEMIS_SIMD", backend, 1);
  auto executor = std::make_unique<sql::Executor>();
  if (prev) {
    setenv("THEMIS_SIMD", saved.c_str(), 1);
  } else {
    unsetenv("THEMIS_SIMD");
  }
  return executor;
}

int Run(size_t rounds, bool smoke, bool strict,
        const std::string& json_path) {
  PrintHeader("Code-native executor micro-bench",
              "simd vs scalar vs row-at-a-time reference, bitwise-checked");
  const size_t t_rows = smoke ? 120000 : 1000000;
  const size_t b_rows = smoke ? 10000 : 50000;

  // Scan table: group columns g/d, numeric v, filter column f, join key k.
  // Weights are multiples of 0.25 so sums are exact and every shard
  // layout agrees with the sequential answer bit for bit.
  auto t_schema = std::make_shared<data::Schema>();
  t_schema->AddAttribute("g", Labels("g", 32));
  t_schema->AddAttribute("d", Labels("d", 24));
  t_schema->AddAttribute("v", Labels("", 64));
  t_schema->AddAttribute("f", Labels("f", 8));
  t_schema->AddAttribute("k", Labels("k", 4096));
  data::Table t(t_schema);
  std::mt19937_64 rng(42);
  for (size_t r = 0; r < t_rows; ++r) {
    t.AppendRow({static_cast<data::ValueCode>(rng() % 32),
                 static_cast<data::ValueCode>(rng() % 24),
                 static_cast<data::ValueCode>(rng() % 64),
                 static_cast<data::ValueCode>(rng() % 8),
                 static_cast<data::ValueCode>(rng() % 4096)});
    t.set_weight(r, static_cast<double>(rng() % 16) * 0.25 + 0.25);
  }
  // Build-side table: its key domain is a distinct Domain object with the
  // same labels, so the probe path exercises the code translation.
  auto b_schema = std::make_shared<data::Schema>();
  b_schema->AddAttribute("kb", Labels("k", 4096));
  b_schema->AddAttribute("h", Labels("h", 16));
  data::Table b(b_schema);
  for (size_t r = 0; r < b_rows; ++r) {
    b.AppendRow({static_cast<data::ValueCode>(rng() % 4096),
                 static_cast<data::ValueCode>(rng() % 16)});
    b.set_weight(r, static_cast<double>(rng() % 8) * 0.25 + 0.5);
  }
  sql::Executor executor;
  executor.RegisterTable("t", &t);
  executor.RegisterTable("b", &b);
  std::unique_ptr<sql::Executor> scalar_executor = MakePinnedExecutor("scalar");
  THEMIS_CHECK(scalar_executor->stats().simd_backend == "scalar");
  scalar_executor->RegisterTable("t", &t);
  scalar_executor->RegisterTable("b", &b);
  const std::string simd_backend = executor.stats().simd_backend;
  std::printf("  t: %zu rows, b: %zu rows, %zu timing rounds\n", t_rows,
              b_rows, rounds);
  std::printf("  simd backend: %s (vs pinned scalar), %s, shard target %zu B\n",
              simd_backend.c_str(),
              util::CpuTopology::Host().ToString().c_str(),
              sql::AutoShardTargetBytes());

  struct Case {
    const char* name;
    std::string sql;
    bool gated;  // carries the >= 2x acceptance bar
  };
  const std::vector<Case> cases = {
      {"group-by scan",
       "SELECT g, d, COUNT(*), SUM(v), AVG(v) FROM t GROUP BY g, d", true},
      {"filtered scan",
       "SELECT g, COUNT(*), SUM(v) FROM t "
       "WHERE f IN ('f1', 'f3', 'f5') AND v < 40 GROUP BY g",
       false},
      {"hash join",
       "SELECT h, COUNT(*) FROM b x, t y WHERE x.kb = y.k GROUP BY h",
       false},
  };

  const size_t hw = std::max<size_t>(2, std::thread::hardware_concurrency());
  std::vector<std::unique_ptr<util::ThreadPool>> pools;
  for (const size_t threads : {size_t{1}, size_t{2}, hw}) {
    pools.push_back(std::make_unique<util::ThreadPool>(threads));
  }

  double gated_speedup = 0;
  double gated_simd_vs_scalar = 0;
  server::JsonValue json_cases = server::JsonValue::Object();
  for (const Case& c : cases) {
    auto stmt = sql::Parse(c.sql);
    THEMIS_CHECK(stmt.ok()) << c.sql;

    // Correctness first: simd == scalar == reference, sequential and at
    // every pool size (and — exact weights — every layout == sequential).
    auto reference = executor.ExecuteReference(*stmt);
    THEMIS_CHECK(reference.ok()) << reference.status().ToString();
    auto vectorized = executor.Execute(*stmt);
    THEMIS_CHECK(vectorized.ok()) << vectorized.status().ToString();
    CheckIdentical(*vectorized, *reference, std::string(c.name) + " seq");
    auto scalar = scalar_executor->Execute(*stmt);
    THEMIS_CHECK(scalar.ok()) << scalar.status().ToString();
    CheckIdentical(*scalar, *reference, std::string(c.name) + " scalar seq");
    for (const auto& pool : pools) {
      const std::string what =
          std::string(c.name) + " pool " + std::to_string(pool->num_threads());
      auto ref_pooled = executor.ExecuteReference(*stmt, pool.get());
      THEMIS_CHECK(ref_pooled.ok()) << what;
      auto vec_pooled = executor.Execute(*stmt, pool.get());
      THEMIS_CHECK(vec_pooled.ok()) << what;
      CheckIdentical(*vec_pooled, *ref_pooled, what + " vs reference");
      CheckIdentical(*vec_pooled, *reference, what + " vs sequential");
      auto scalar_pooled = scalar_executor->Execute(*stmt, pool.get());
      THEMIS_CHECK(scalar_pooled.ok()) << what;
      CheckIdentical(*vec_pooled, *scalar_pooled, what + " simd vs scalar");
    }

    // Timing: sequential reference vs scalar-kernel vs simd-kernel (the
    // tentpole bars), plus the pooled vectorized scan for context.
    Timer timer;
    for (size_t r = 0; r < rounds; ++r) {
      THEMIS_CHECK(executor.ExecuteReference(*stmt).ok());
    }
    const double ref_seconds = timer.Seconds() / rounds;
    timer.Restart();
    for (size_t r = 0; r < rounds; ++r) {
      THEMIS_CHECK(scalar_executor->Execute(*stmt).ok());
    }
    const double scalar_seconds = timer.Seconds() / rounds;
    timer.Restart();
    for (size_t r = 0; r < rounds; ++r) {
      THEMIS_CHECK(executor.Execute(*stmt).ok());
    }
    const double vec_seconds = timer.Seconds() / rounds;
    timer.Restart();
    for (size_t r = 0; r < rounds; ++r) {
      THEMIS_CHECK(executor.Execute(*stmt, pools.back().get()).ok());
    }
    const double pooled_seconds = timer.Seconds() / rounds;

    const double speedup = vec_seconds > 0 ? ref_seconds / vec_seconds : 0;
    const double simd_vs_scalar =
        vec_seconds > 0 ? scalar_seconds / vec_seconds : 0;
    if (c.gated) {
      gated_speedup = speedup;
      gated_simd_vs_scalar = simd_vs_scalar;
    }
    std::printf(
        "  %-14s reference %7.1f ms   scalar %7.1f ms   %s %7.1f ms "
        "(%.1fx vs ref, %.2fx vs scalar)   pooled(%zu) %7.1f ms\n",
        c.name, ref_seconds * 1e3, scalar_seconds * 1e3, simd_backend.c_str(),
        vec_seconds * 1e3, speedup, simd_vs_scalar, hw, pooled_seconds * 1e3);

    server::JsonValue entry = server::JsonValue::Object();
    entry.Set("reference_ms", server::JsonValue::Number(ref_seconds * 1e3));
    entry.Set("scalar_ms", server::JsonValue::Number(scalar_seconds * 1e3));
    entry.Set("simd_ms", server::JsonValue::Number(vec_seconds * 1e3));
    entry.Set("pooled_ms", server::JsonValue::Number(pooled_seconds * 1e3));
    entry.Set("speedup_vs_reference", server::JsonValue::Number(speedup));
    entry.Set("simd_speedup_vs_scalar",
              server::JsonValue::Number(simd_vs_scalar));
    json_cases.Set(c.name, std::move(entry));
  }

  std::printf("  all answers bitwise-identical to the reference path: yes\n");
  std::printf("  group-by scan sequential speedup: %.2fx %s\n", gated_speedup,
              gated_speedup >= 2.0 ? "(>= 2x: vectorization win demonstrated)"
                                   : "(below the 2x bar)");
  std::printf("  group-by scan %s vs scalar kernels: %.2fx\n",
              simd_backend.c_str(), gated_simd_vs_scalar);

  if (!json_path.empty()) {
    server::JsonValue root = server::JsonValue::Object();
    root.Set("bench", server::JsonValue::String("executor"));
    root.Set("smoke", server::JsonValue::Bool(smoke));
    root.Set("rounds",
             server::JsonValue::Number(static_cast<double>(rounds)));
    root.Set("simd_backend", server::JsonValue::String(simd_backend));
    root.Set("shard_target_bytes",
             server::JsonValue::Number(
                 static_cast<double>(sql::AutoShardTargetBytes())));
    root.Set("cpu_topology",
             server::JsonValue::String(util::CpuTopology::Host().ToString()));
    root.Set("cases", std::move(json_cases));
    // The gate object is what tools/check_bench.py compares across runs:
    // ratios, not wall-clock, so the gate survives runner speed changes.
    server::JsonValue gate = server::JsonValue::Object();
    gate.Set("group_by_scan_speedup_vs_reference",
             server::JsonValue::Number(gated_speedup));
    gate.Set("group_by_scan_simd_speedup_vs_scalar",
             server::JsonValue::Number(gated_simd_vs_scalar));
    root.Set("gate", std::move(gate));
    std::ofstream out(json_path);
    THEMIS_CHECK(out.good()) << json_path;
    out << root.Dump() << "\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return (strict && gated_speedup < 2.0) ? 1 : 0;
}

}  // namespace
}  // namespace themis::bench

int main(int argc, char** argv) {
  size_t rounds = 3;
  bool smoke = false;
  bool strict = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      rounds = static_cast<size_t>(std::strtoul(argv[i], nullptr, 10));
    }
  }
  if (rounds == 0) rounds = 1;
  return themis::bench::Run(rounds, smoke, strict, json_path);
}
