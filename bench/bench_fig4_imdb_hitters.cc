// Reproduces Fig 4: heavy-/light-hitter boxplots over the four IMDB
// samples with B = 4 2D aggregates. Shape to reproduce: same ordering as
// Fig 3 on supported samples; BB is *not* best on R159 because the dense
// `name` attribute is modeled as uniform.
#include "common.h"

#include "util/logging.h"

namespace themis::bench {
namespace {

void Run() {
  PrintHeader("Fig 4", "IMDB heavy/light hitters, 4 2D aggregates");
  BenchScale scale;
  DatasetSetup setup = MakeImdb(scale);
  aggregate::AggregateSet aggregates =
      MakePaperAggregates(setup.population, setup.covered_attrs, 5, 4);

  Rng rng(42);
  // The paper uses random 3D attribute sets over *all* attributes (incl.
  // the dense uncovered name attribute).
  auto heavy = workload::MakeMixedPointQueries(
      setup.population, 3, 3, workload::HitterClass::kHeavy, scale.queries,
      rng);
  auto light = workload::MakeMixedPointQueries(
      setup.population, 3, 3, workload::HitterClass::kLight, scale.queries,
      rng);

  for (const char* sample_name : {"Unif", "GB", "SR159", "R159"}) {
    auto suite = workload::MethodSuite::Build(
        setup.samples.at(sample_name), aggregates,
        static_cast<double>(setup.population.num_rows()), BenchOptions());
    THEMIS_CHECK(suite.ok()) << suite.status().ToString();
    for (const auto& [klass, queries] :
         {std::pair{"heavy", &heavy}, std::pair{"light", &light}}) {
      std::printf("-- %s, %s hitters (min/p25/med/p75/max) --\n",
                  sample_name, klass);
      for (const char* method : {"AQP", "IPF", "BB", "Hybrid"}) {
        auto errors = suite->Errors(method, *queries);
        THEMIS_CHECK(errors.ok());
        PrintBoxplotRow(method, *errors);
      }
    }
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
