#include "knowledge_sweep.h"

#include "util/logging.h"

namespace themis::bench {

namespace {

std::vector<workload::PointQuery> SweepQueries(const DatasetSetup& setup,
                                               const BenchScale& scale,
                                               uint64_t seed) {
  Rng rng(seed);
  const size_t max_dim =
      std::min<size_t>(setup.population.num_attributes(), 4);
  return workload::MakeMixedPointQueries(setup.population, 2, max_dim,
                                         workload::HitterClass::kRandom,
                                         scale.queries, rng);
}

void PrintSweepRow(const workload::MethodSuite& suite,
                   const std::vector<workload::PointQuery>& queries,
                   const std::string& prefix) {
  std::printf("  %-10s", prefix.c_str());
  for (const char* method : {"AQP", "IPF", "BB", "Hybrid"}) {
    auto errors = suite.Errors(method, queries);
    THEMIS_CHECK(errors.ok()) << errors.status().ToString();
    std::printf("  %6.1f", stats::Mean(*errors));
  }
  std::printf("\n");
}

}  // namespace

void Run1dSweep(const DatasetSetup& setup,
                const std::vector<std::string>& sample_names,
                const BenchScale& scale, uint64_t seed) {
  auto queries = SweepQueries(setup, scale, seed);
  const double n = static_cast<double>(setup.population.num_rows());
  for (const std::string& sample_name : sample_names) {
    for (const char* order : {"A", "B"}) {
      std::vector<size_t> attrs = setup.covered_attrs;
      if (std::string(order) == "B") {
        std::reverse(attrs.begin(), attrs.end());
      }
      std::printf("-- %s, order %s --\n", sample_name.c_str(), order);
      std::printf("  #1D aggs      AQP     IPF      BB  Hybrid\n");
      for (size_t b = 1; b <= attrs.size(); ++b) {
        aggregate::AggregateSet aggregates(setup.population.schema());
        for (size_t i = 0; i < b; ++i) {
          aggregates.Add(
              aggregate::ComputeAggregate(setup.population, {attrs[i]}));
        }
        auto suite = workload::MethodSuite::Build(
            setup.samples.at(sample_name), aggregates, n, BenchOptions());
        THEMIS_CHECK(suite.ok()) << suite.status().ToString();
        PrintSweepRow(*suite, queries, StrFormat("%zu", b));
      }
    }
  }
}

void RunMultiDimSweep(const DatasetSetup& setup,
                      const std::vector<std::string>& sample_names,
                      size_t d, const BenchScale& scale, uint64_t seed) {
  auto queries = SweepQueries(setup, scale, seed);
  const double n = static_cast<double>(setup.population.num_rows());
  for (const std::string& sample_name : sample_names) {
    std::printf("-- %s --\n", sample_name.c_str());
    std::printf("  #%zuD aggs      AQP     IPF      BB  Hybrid\n", d);
    for (size_t b = 0; b <= 4; ++b) {
      aggregate::AggregateSet aggregates = MakePaperAggregates(
          setup.population, setup.covered_attrs, setup.covered_attrs.size(),
          d == 2 ? b : 0, d == 3 ? b : 0);
      auto suite = workload::MethodSuite::Build(
          setup.samples.at(sample_name), aggregates, n, BenchOptions());
      THEMIS_CHECK(suite.ok()) << suite.status().ToString();
      PrintSweepRow(*suite, queries, StrFormat("%zu", b));
    }
    if (d == 3) {
      // Reference line: hybrid with 4 2D aggregates (the green line of
      // Figs 11/12).
      aggregate::AggregateSet reference = MakePaperAggregates(
          setup.population, setup.covered_attrs, setup.covered_attrs.size(),
          4, 0);
      auto suite = workload::MethodSuite::Build(
          setup.samples.at(sample_name), reference, n, BenchOptions());
      THEMIS_CHECK(suite.ok());
      auto errors = suite->Errors("Hybrid", queries);
      THEMIS_CHECK(errors.ok());
      std::printf("  (4 2D reference: hybrid mean %.1f)\n",
                  stats::Mean(*errors));
    }
  }
}

}  // namespace themis::bench
