// Ablation (Sec 4.2.4): GROUP BY answering draws K forward-sampled tables
// from the BN, keeps groups present in all K answers, and averages the
// values — "using K samples reduces the variance and the number of
// incorrect phantom groups". Sweeps K and measures the group-by error and
// the phantom-group count for a 2D GROUP BY on Flights SCorners.
// Expectation: phantom groups drop sharply as K grows; error improves then
// plateaus around the paper's K = 10.
#include "common.h"

#include <set>

#include "core/evaluator.h"
#include "core/model.h"
#include "stats/metrics.h"
#include "util/logging.h"

namespace themis::bench {
namespace {

using workload::FlightsAttrs;

void Run() {
  PrintHeader("Ablation", "K generated samples for GROUP BY answering");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  const double n = static_cast<double>(setup.population.num_rows());
  aggregate::AggregateSet aggregates =
      MakePaperAggregates(setup.population, setup.covered_attrs, 5, 4);

  // (origin, elapsed): the two attributes are only indirectly linked in a
  // tree BN (through distance), so generated samples produce impossible
  // combinations — phantom groups for the K-intersection rule to suppress.
  const std::string sql =
      "SELECT origin_state, elapsed_time, COUNT(*) FROM sample "
      "GROUP BY origin_state, elapsed_time";
  sql::Executor truth_executor;
  truth_executor.RegisterTable("sample", &setup.population);
  auto truth = truth_executor.Query(sql);
  THEMIS_CHECK(truth.ok());
  auto truth_map = truth->ValueMap();

  std::printf("  K    groups  phantoms  missed  avg_err\n");
  for (size_t k : {1ul, 2ul, 5ul, 10ul, 20ul}) {
    core::ThemisOptions options = BenchOptions();
    options.bn_group_by_samples = k;
    options.bn_sample_rows = 0;  // |S'_k| = nS, as in the paper
    options.population_size = n;
    auto model = core::ThemisModel::Build(
        setup.samples.at("SCorners").Clone(), aggregates, options);
    THEMIS_CHECK(model.ok());
    core::HybridEvaluator evaluator(&*model);
    auto result = evaluator.Query(sql, core::AnswerMode::kBnOnly);
    THEMIS_CHECK(result.ok()) << result.status().ToString();
    auto estimate = result->ValueMap();

    size_t phantoms = 0, missed = 0;
    double total_err = 0;
    size_t count = 0;
    for (const auto& [key, tv] : truth_map) {
      auto it = estimate.find(key);
      if (it == estimate.end()) {
        ++missed;
        total_err += stats::kMaxPercentDifference;
      } else {
        total_err += stats::PercentDifference(tv, it->second);
      }
      ++count;
    }
    for (const auto& [key, ev] : estimate) {
      if (!truth_map.count(key)) {
        ++phantoms;
        total_err += stats::kMaxPercentDifference;
        ++count;
      }
    }
    std::printf("  %-3zu  %6zu  %8zu  %6zu  %7.1f\n", k, estimate.size(),
                phantoms, missed, total_err / static_cast<double>(count));
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
