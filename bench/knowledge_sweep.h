#ifndef THEMIS_BENCH_KNOWLEDGE_SWEEP_H_
#define THEMIS_BENCH_KNOWLEDGE_SWEEP_H_

#include <string>
#include <vector>

#include "common.h"

namespace themis::bench {

/// Shared implementation of the "changing aggregate knowledge" figures
/// (Sec 6.5, Figs 7-12): average percent difference of random point
/// queries per method as aggregates are added.

/// Figs 7/8: add the 1D aggregates one at a time in the given attribute
/// order (order A) and in reverse (order B), with no multi-D aggregates.
void Run1dSweep(const DatasetSetup& setup,
                const std::vector<std::string>& sample_names,
                const BenchScale& scale, uint64_t seed);

/// Figs 9/10 (d=2) and 11/12 (d=3): add 0..4 d-dimensional aggregates
/// (t-cherry selected) after all five 1D aggregates. For d=3 also prints
/// the hybrid reference line at 4 2D aggregates.
void RunMultiDimSweep(const DatasetSetup& setup,
                      const std::vector<std::string>& sample_names,
                      size_t d, const BenchScale& scale, uint64_t seed);

}  // namespace themis::bench

#endif  // THEMIS_BENCH_KNOWLEDGE_SWEEP_H_
