// Ablation (Sec 5.2 / Sec 6.1): the paper limits its Bayesian networks to
// trees "to limit the number of tuning parameters", and mentions limiting
// the number of parents as an efficiency lever. Compares max_parents = 1
// (the paper's tree setting) against 2 and 3 on Flights SCorners:
// accuracy of the BN answers plus structure/parameter learning time.
// Expectation: wider families buy some accuracy at a superlinear learning
// cost (CPT configurations multiply).
#include "common.h"

#include "bn/inference.h"
#include "bn/learn.h"
#include "stats/metrics.h"
#include "util/logging.h"

namespace themis::bench {
namespace {

void Run() {
  PrintHeader("Ablation", "BN max-parents (tree vs wider families)");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  const double n = static_cast<double>(setup.population.num_rows());
  const data::Table& sample = setup.samples.at("SCorners");
  aggregate::AggregateSet aggregates =
      MakePaperAggregates(setup.population, setup.covered_attrs, 5, 4, 2);

  Rng rng(193);
  auto queries = workload::MakeMixedPointQueries(
      setup.population, 2, 4, workload::HitterClass::kRandom, scale.queries,
      rng);

  std::printf(
      "  max_parents  edges  free_params  struct_s  param_s  avg_err\n");
  for (size_t max_parents : {1ul, 2ul, 3ul}) {
    bn::BnLearnOptions options;
    options.variant = bn::BnVariant::kBB;
    options.structure.max_parents = max_parents;
    bn::BnLearnStats stats;
    auto network = bn::LearnBayesNet(sample.schema(), &sample, &aggregates,
                                     options, &stats);
    THEMIS_CHECK(network.ok()) << network.status().ToString();

    bn::VariableElimination ve(&*network);
    std::vector<double> errors;
    for (const auto& query : queries) {
      bn::Evidence evidence;
      for (size_t i = 0; i < query.attrs.size(); ++i) {
        evidence[query.attrs[i]] = query.values[i];
      }
      auto p = ve.Probability(evidence);
      errors.push_back(stats::PercentDifference(query.true_count,
                                                p.ok() ? n * *p : 0.0));
    }
    std::printf("  %-11zu  %5zu  %11zu  %8.3f  %7.3f  %7.1f\n", max_parents,
                network->dag().num_edges(), network->NumFreeParameters(),
                stats.structure_seconds, stats.parameter_seconds,
                stats::Mean(errors));
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
