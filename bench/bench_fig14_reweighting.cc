// Reproduces Fig 14: percent-difference boxplots of LinReg vs IPF vs AQP
// on 100 random point queries over the four Flights samples with 4 2D
// aggregates. Shape to reproduce: IPF <= LinReg < AQP on the biased
// samples — LinReg is hurt by the E/DT correlation (weight mass leaks to
// correlated attribute values).
#include "common.h"

#include "util/logging.h"

namespace themis::bench {
namespace {

void Run() {
  PrintHeader("Fig 14", "Reweighting comparison on Flights samples");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  aggregate::AggregateSet aggregates =
      MakePaperAggregates(setup.population, setup.covered_attrs, 5, 4);

  Rng rng(141);
  auto queries = workload::MakeMixedPointQueries(
      setup.population, 2, 5, workload::HitterClass::kRandom, scale.queries,
      rng);

  core::ThemisOptions options = BenchOptions();
  options.enable_bn = false;  // pure reweighting comparison
  for (const char* sample_name : {"Unif", "June", "SCorners", "Corners"}) {
    auto suite = workload::MethodSuite::Build(
        setup.samples.at(sample_name), aggregates,
        static_cast<double>(setup.population.num_rows()), options);
    THEMIS_CHECK(suite.ok()) << suite.status().ToString();
    std::printf("-- %s (min/p25/med/p75/max) --\n", sample_name);
    for (const char* method : {"AQP", "LinReg", "IPF"}) {
      auto errors = suite->Errors(method, queries);
      THEMIS_CHECK(errors.ok());
      PrintBoxplotRow(method, *errors);
    }
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
