// Reproduces Fig 15: aggregate pruning effectiveness on the CHILD dataset.
// A 10% uniform sample plus full 1D aggregates; 2D aggregates are added in
// batches selected either by the t-cherry pruning (Prune) or at random
// (Rand), for the AB and BB variants, against the optimal error of the
// ground-truth network (OPT). Shape to reproduce: Prune improves faster
// than Rand; BB beats AB at low aggregate counts; both converge with
// enough aggregates, approaching OPT.
#include "common.h"

#include "aggregate/pruning.h"
#include "bn/child_network.h"
#include "bn/inference.h"
#include "bn/learn.h"
#include "stats/metrics.h"
#include "util/logging.h"
#include "workload/child.h"

namespace themis::bench {
namespace {

std::vector<double> BnErrors(const bn::BayesianNetwork& network, double n,
                             const std::vector<workload::PointQuery>& queries) {
  bn::VariableElimination ve(&network);
  std::vector<double> errors;
  errors.reserve(queries.size());
  for (const auto& query : queries) {
    bn::Evidence evidence;
    for (size_t i = 0; i < query.attrs.size(); ++i) {
      evidence[query.attrs[i]] = query.values[i];
    }
    auto p = ve.Probability(evidence);
    const double estimate = p.ok() ? n * *p : 0.0;
    errors.push_back(stats::PercentDifference(query.true_count, estimate));
  }
  return errors;
}

void Run() {
  PrintHeader("Fig 15", "Aggregate pruning on CHILD (Prune vs Rand)");
  BenchScale scale;
  workload::ChildConfig config;
  config.num_rows = static_cast<size_t>(20000 * workload::EnvScale());
  data::Table population = workload::GenerateChild(config);
  const double n = static_cast<double>(population.num_rows());
  Rng sample_rng(151);
  data::Table sample = workload::UniformSample(population, 0.1, sample_rng);

  // Candidate 2D aggregates: all attribute pairs.
  std::vector<size_t> attrs(population.num_attributes());
  for (size_t a = 0; a < attrs.size(); ++a) attrs[a] = a;
  std::vector<aggregate::AggregateSpec> candidates;
  for (const auto& pair : workload::AllSubsets(attrs, 2)) {
    candidates.push_back(aggregate::ComputeAggregate(population, pair));
  }

  // Queries: random point queries over attribute sets of size 2..6
  // (scaled-down version of the paper's size 2..10 sweep).
  Rng query_rng(152);
  auto queries = workload::MakeMixedPointQueries(
      population, 2, 6, workload::HitterClass::kRandom, scale.queries,
      query_rng);

  // OPT: the ground-truth network the data was sampled from.
  bn::BayesianNetwork truth_network =
      bn::MakeChildNetwork(config.network_seed);
  auto opt_errors = BnErrors(truth_network, n, queries);
  std::printf("  OPT (true network) mean error: %.1f\n",
              stats::Mean(opt_errors));

  std::printf("  #2D    RandAB  RandBB  PruneAB  PruneBB\n");
  for (size_t budget : {5, 15, 25, 35, 45, 65}) {
    std::printf("  %-4zu", budget);
    for (const char* selection : {"Rand", "Prune"}) {
      Rng select_rng(153);
      std::vector<size_t> picked =
          std::string(selection) == "Prune"
              ? aggregate::SelectAggregatesTCherry(candidates, budget)
              : aggregate::SelectAggregatesRandom(candidates, budget,
                                                  select_rng);
      aggregate::AggregateSet aggregates(population.schema());
      for (size_t idx : picked) aggregates.Add(candidates[idx]);
      for (size_t a = 0; a < attrs.size(); ++a) {
        aggregates.Add(aggregate::ComputeAggregate(population, {a}));
      }
      for (bn::BnVariant variant : {bn::BnVariant::kAB, bn::BnVariant::kBB}) {
        bn::BnLearnOptions options;
        options.variant = variant;
        auto network = bn::LearnBayesNet(population.schema(), &sample,
                                         &aggregates, options);
        THEMIS_CHECK(network.ok()) << network.status().ToString();
        auto errors = BnErrors(*network, n, queries);
        std::printf("  %6.1f", stats::Mean(errors));
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
