// Measures cross-query parallel throughput of the shared execution
// runtime: queries/sec of a sequential Query() loop vs ThemisDb-style
// QueryBatch on one model, at pool sizes 1/2/4/hw. The batch fans whole
// plans across the pool while each GROUP BY plan's K BN-sample executors
// nest on the same pool; answers must stay bitwise identical to the
// 1-thread sequential loop's — any divergence aborts.
//
//   ./bench_batch_throughput [rounds] [--strict]
//
// The acceptance bar is >= 1.5x batch-at-hw over the sequential loop.
// --strict turns that bar into the exit code; without it timing stays
// informational (wall-clock gates flake on noisy shared runners).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"

#include "core/evaluator.h"
#include "core/model.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace themis::bench {
namespace {

/// The mixed serving workload: point lookups (heavy/light/random hitters)
/// interleaved with GROUP BY aggregates of several shapes.
std::vector<std::string> MakeMixedWorkload(const DatasetSetup& setup,
                                           size_t target_size) {
  const data::SchemaPtr& schema = setup.population.schema();
  std::vector<std::string> sqls;

  Rng rng(2024);
  const auto points = workload::MakeMixedPointQueries(
      setup.population, 2, 3, workload::HitterClass::kRandom, 60, rng);
  for (const auto& q : points) {
    std::string sql = "SELECT COUNT(*) FROM sample WHERE ";
    for (size_t i = 0; i < q.attrs.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += schema->domain(q.attrs[i]).name() + " = '" +
             schema->domain(q.attrs[i]).Label(q.values[i]) + "'";
    }
    sqls.push_back(std::move(sql));
  }
  for (size_t a = 0; a < schema->num_attributes(); ++a) {
    sqls.push_back("SELECT " + schema->domain(a).name() +
                   ", COUNT(*) FROM sample GROUP BY " +
                   schema->domain(a).name());
    for (size_t b = a + 1; b < schema->num_attributes(); ++b) {
      sqls.push_back("SELECT " + schema->domain(a).name() + ", " +
                     schema->domain(b).name() +
                     ", COUNT(*) FROM sample GROUP BY " +
                     schema->domain(a).name() + ", " +
                     schema->domain(b).name());
    }
  }
  const size_t distinct = sqls.size();
  while (sqls.size() < target_size) {
    sqls.push_back(sqls[sqls.size() % distinct]);
  }
  return sqls;
}

void CheckIdentical(const std::vector<sql::QueryResult>& a,
                    const std::vector<sql::QueryResult>& b,
                    const char* what) {
  THEMIS_CHECK(a.size() == b.size()) << what;
  for (size_t q = 0; q < a.size(); ++q) {
    THEMIS_CHECK(a[q].rows.size() == b[q].rows.size()) << what << " q" << q;
    for (size_t i = 0; i < a[q].rows.size(); ++i) {
      THEMIS_CHECK(a[q].rows[i].group == b[q].rows[i].group)
          << what << " q" << q;
      // Bitwise double equality, not approximate.
      THEMIS_CHECK(a[q].rows[i].values == b[q].rows[i].values)
          << what << " q" << q;
    }
  }
}

int Run(size_t rounds, bool strict) {
  PrintHeader("Batch-throughput micro-bench",
              "sequential Query() loop vs QueryBatch across pool sizes");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  const double n = static_cast<double>(setup.population.num_rows());
  aggregate::AggregateSet aggregates =
      MakePaperAggregates(setup.population, setup.covered_attrs, 5, 4);

  core::ThemisOptions options = BenchOptions();
  options.population_size = n;
  auto model = core::ThemisModel::Build(setup.samples.at("Corners").Clone(),
                                        aggregates, options);
  THEMIS_CHECK(model.ok()) << model.status().ToString();

  const std::vector<std::string> sqls = MakeMixedWorkload(setup, 240);
  std::printf("  %zu mixed queries x %zu rounds\n", sqls.size(), rounds);

  const size_t hw = util::DefaultParallelism();
  std::vector<size_t> sizes = {1, 2, 4, hw};
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());

  // The 1-thread sequential loop is the baseline; every other
  // configuration must answer bitwise identically to it.
  std::vector<sql::QueryResult> reference;
  double baseline_qps = 0;
  double batch_hw_qps = 0;

  std::printf("  %8s  %14s  %14s\n", "pool", "loop q/s", "batch q/s");
  for (size_t threads : sizes) {
    util::ThreadPool pool(threads);
    // Fresh evaluator per pool size: empty memo and inference cache, so
    // every configuration does the same work.
    core::HybridEvaluator evaluator(&*model, "sample", &pool);

    Timer timer;
    std::vector<sql::QueryResult> loop_results;
    loop_results.reserve(sqls.size() * rounds);
    for (size_t r = 0; r < rounds; ++r) {
      evaluator.ClearResultMemo();
      if (auto* engine = evaluator.mutable_inference_engine()) {
        engine->ClearCache();
      }
      for (const std::string& sql : sqls) {
        auto result = evaluator.Query(sql);
        THEMIS_CHECK(result.ok()) << result.status().ToString();
        loop_results.push_back(std::move(*result));
      }
    }
    const double loop_qps =
        static_cast<double>(sqls.size() * rounds) / timer.Seconds();

    std::vector<sql::QueryResult> batch_results;
    batch_results.reserve(sqls.size() * rounds);
    timer.Restart();
    for (size_t r = 0; r < rounds; ++r) {
      evaluator.ClearResultMemo();
      if (auto* engine = evaluator.mutable_inference_engine()) {
        engine->ClearCache();
      }
      auto batch = evaluator.QueryBatch(sqls, core::AnswerMode::kHybrid);
      THEMIS_CHECK(batch.ok()) << batch.status().ToString();
      for (auto& result : *batch) batch_results.push_back(std::move(result));
    }
    const double batch_qps =
        static_cast<double>(sqls.size() * rounds) / timer.Seconds();

    CheckIdentical(loop_results, batch_results, "loop vs batch");
    if (reference.empty()) {
      reference = std::move(loop_results);
      baseline_qps = loop_qps;
    } else {
      CheckIdentical(reference, batch_results, "pool-size identity");
    }
    if (threads == hw) batch_hw_qps = batch_qps;
    std::printf("  %8zu  %14.0f  %14.0f\n", threads, loop_qps, batch_qps);
  }

  const double speedup = baseline_qps > 0 ? batch_hw_qps / baseline_qps : 0;
  std::printf("  answers bitwise-identical across pool sizes: yes\n");
  std::printf("  batch@%zu vs sequential loop@1: %.2fx %s\n", hw, speedup,
              speedup >= 1.5 ? "(>= 1.5x: batch win demonstrated)"
                             : "(below the 1.5x bar)");
  return (strict && speedup < 1.5) ? 1 : 0;
}

}  // namespace
}  // namespace themis::bench

int main(int argc, char** argv) {
  size_t rounds = 3;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      rounds = static_cast<size_t>(std::strtoul(argv[i], nullptr, 10));
    }
  }
  if (rounds == 0) rounds = 1;
  return themis::bench::Run(rounds, strict);
}
