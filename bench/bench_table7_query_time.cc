// Reproduces Table 7 (google-benchmark): average point-query execution
// time for the reweighted-sample path (RW — any reweighting technique,
// they are stored and queried identically) and for exact BN inference
// under each learning variant, on IMDB SR159 with 4 2D aggregates. Shape
// to reproduce: both are interactive; BN inference is in the same order
// of magnitude as (and here typically faster than) scanning the sample.
#include <benchmark/benchmark.h>

#include "common.h"

#include "bn/inference_engine.h"
#include "bn/learn.h"
#include "core/evaluator.h"
#include "core/model.h"
#include "util/logging.h"

namespace themis::bench {
namespace {

struct Table7State {
  DatasetSetup setup;
  std::unique_ptr<core::ThemisModel> model;
  std::unique_ptr<core::HybridEvaluator> evaluator;
  std::map<std::string, bn::BayesianNetwork> networks;
  std::vector<workload::PointQuery> queries;

  Table7State() : setup(MakeImdb(BenchScale())) {
    const double n = static_cast<double>(setup.population.num_rows());
    aggregate::AggregateSet aggregates =
        MakePaperAggregates(setup.population, setup.covered_attrs, 5, 4);
    core::ThemisOptions options = BenchOptions();
    options.population_size = n;
    options.enable_bn = false;
    auto model = core::ThemisModel::Build(
        setup.samples.at("SR159").Clone(), aggregates, options);
    THEMIS_CHECK(model.ok());
    this->model = std::make_unique<core::ThemisModel>(std::move(model).value());
    evaluator = std::make_unique<core::HybridEvaluator>(this->model.get());
    for (bn::BnVariant variant :
         {bn::BnVariant::kSS, bn::BnVariant::kSB, bn::BnVariant::kBS,
          bn::BnVariant::kAB, bn::BnVariant::kBB}) {
      bn::BnLearnOptions bn_options;
      bn_options.variant = variant;
      auto network =
          bn::LearnBayesNet(setup.population.schema(),
                            &setup.samples.at("SR159"), &aggregates,
                            bn_options);
      THEMIS_CHECK(network.ok());
      networks.emplace(bn::BnVariantName(variant),
                       std::move(network).value());
    }
    Rng rng(171);
    queries = workload::MakeMixedPointQueries(
        setup.population, 2, 3, workload::HitterClass::kRandom, 100, rng);
  }
};

Table7State& State() {
  static Table7State* state = new Table7State();
  return *state;
}

void BM_PointQuery_RW(benchmark::State& bench) {
  Table7State& s = State();
  size_t i = 0;
  for (auto _ : bench) {
    const auto& q = s.queries[i++ % s.queries.size()];
    auto result = s.evaluator->PointEstimate(q.attrs, q.values,
                                             core::AnswerMode::kSampleOnly);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PointQuery_RW);

void BnBench(benchmark::State& bench, const std::string& variant,
             bool enable_cache = false) {
  Table7State& s = State();
  const bn::BayesianNetwork& network = s.networks.at(variant);
  const double n = s.model->population_size();
  // Through the unified engine; uncached runs measure raw inference cost
  // (the paper's Table 7 shape), the cached run the cross-query reuse win.
  bn::InferenceEngine::Options options;
  options.enable_cache = enable_cache;
  bn::InferenceEngine engine(&network, options);
  size_t i = 0;
  for (auto _ : bench) {
    const auto& q = s.queries[i++ % s.queries.size()];
    bn::Evidence evidence;
    for (size_t j = 0; j < q.attrs.size(); ++j) {
      evidence[q.attrs[j]] = q.values[j];
    }
    auto p = engine.Probability(evidence);
    const double estimate = p.ok() ? n * *p : 0.0;
    benchmark::DoNotOptimize(estimate);
  }
}

void BM_PointQuery_SS(benchmark::State& b) { BnBench(b, "SS"); }
void BM_PointQuery_SB(benchmark::State& b) { BnBench(b, "SB"); }
void BM_PointQuery_BS(benchmark::State& b) { BnBench(b, "BS"); }
void BM_PointQuery_AB(benchmark::State& b) { BnBench(b, "AB"); }
void BM_PointQuery_BB(benchmark::State& b) { BnBench(b, "BB"); }
void BM_PointQuery_BB_Cached(benchmark::State& b) {
  BnBench(b, "BB", /*enable_cache=*/true);
}
BENCHMARK(BM_PointQuery_SS);
BENCHMARK(BM_PointQuery_SB);
BENCHMARK(BM_PointQuery_BS);
BENCHMARK(BM_PointQuery_AB);
BENCHMARK(BM_PointQuery_BB);
BENCHMARK(BM_PointQuery_BB_Cached);

}  // namespace
}  // namespace themis::bench

BENCHMARK_MAIN();
