#include "common.h"

#include <cstdlib>

#include "aggregate/pruning.h"
#include "stats/descriptive.h"
#include "util/logging.h"

namespace themis::bench {

BenchScale::BenchScale() {
  const double scale = workload::EnvScale();
  flights_rows = static_cast<size_t>(150000 * scale);
  imdb_rows = static_cast<size_t>(80000 * scale);
  queries = static_cast<size_t>(60 * scale);
  if (queries > 100) queries = 100;
}

void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("=====================================================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("(percent-difference metric; see EXPERIMENTS.md)\n");
  std::printf("=====================================================\n");
}

void PrintBoxplotRow(const std::string& label,
                     const std::vector<double>& errors) {
  stats::BoxplotSummary s = stats::Summarize(errors);
  std::printf("  %-22s %s\n", label.c_str(), s.ToString().c_str());
}

void PrintMeanRow(const std::string& label,
                  const std::vector<double>& errors) {
  std::printf("  %-22s mean %7.2f  median %7.2f\n", label.c_str(),
              stats::Mean(errors), stats::Median(errors));
}

DatasetSetup MakeFlights(const BenchScale& scale, uint64_t seed) {
  DatasetSetup setup{
      workload::GenerateFlights({scale.flights_rows, seed}), {}, {}};
  for (const char* name : {"Unif", "June", "SCorners", "Corners"}) {
    auto sample =
        workload::MakeFlightsSample(setup.population, name, 0.1, seed + 7);
    THEMIS_CHECK(sample.ok()) << sample.status().ToString();
    setup.samples.emplace(name, std::move(sample).value());
  }
  setup.covered_attrs = {0, 1, 2, 3, 4};
  return setup;
}

DatasetSetup MakeImdb(const BenchScale& scale, uint64_t seed) {
  DatasetSetup setup{
      workload::GenerateImdb({scale.imdb_rows, 2000, seed}), {}, {}};
  for (const char* name : {"Unif", "GB", "SR159", "R159"}) {
    auto sample =
        workload::MakeImdbSample(setup.population, name, 0.1, seed + 7);
    THEMIS_CHECK(sample.ok()) << sample.status().ToString();
    setup.samples.emplace(name, std::move(sample).value());
  }
  // Aggregates cover MY, MC, G, RG, RT only (Sec 6.2) — name, birth and
  // top-rank stay uncovered, exactly the paper's partial-coverage setup.
  setup.covered_attrs = {
      workload::ImdbAttrs::kMovieYear, workload::ImdbAttrs::kCountry,
      workload::ImdbAttrs::kGender, workload::ImdbAttrs::kRating,
      workload::ImdbAttrs::kRuntime};
  return setup;
}

aggregate::AggregateSet MakePaperAggregates(const data::Table& population,
                                            const std::vector<size_t>& covered,
                                            size_t num_1d, size_t budget_2d,
                                            size_t budget_3d) {
  aggregate::AggregateSet set(population.schema());
  // Multi-dimensional aggregates first, 1D marginals last: Alg 1 sweeps
  // constraints in order, so the coarse marginals hold exactly at sweep
  // end even when sparse higher-dim constraints are unsatisfiable.
  if (budget_2d > 0) {
    std::vector<aggregate::AggregateSpec> candidates;
    for (const auto& attrs : workload::AllSubsets(covered, 2)) {
      candidates.push_back(aggregate::ComputeAggregate(population, attrs));
    }
    for (size_t idx :
         aggregate::SelectAggregatesTCherry(candidates, budget_2d)) {
      set.Add(candidates[idx]);
    }
  }
  if (budget_3d > 0) {
    std::vector<aggregate::AggregateSpec> candidates;
    for (const auto& attrs : workload::AllSubsets(covered, 3)) {
      candidates.push_back(aggregate::ComputeAggregate(population, attrs));
    }
    for (size_t idx :
         aggregate::SelectAggregatesTCherry(candidates, budget_3d)) {
      set.Add(candidates[idx]);
    }
  }
  for (size_t i = 0; i < num_1d && i < covered.size(); ++i) {
    set.Add(aggregate::ComputeAggregate(population, {covered[i]}));
  }
  return set;
}

core::ThemisOptions BenchOptions() {
  core::ThemisOptions options;
  options.bn_group_by_samples = 10;  // paper's K
  options.bn_sample_rows = 2000;
  // THEMIS_INFERENCE_CACHE=0 disables cross-query marginal memoization so
  // the reuse win is measurable (answers are identical either way).
  const char* cache_env = std::getenv("THEMIS_INFERENCE_CACHE");
  if (cache_env != nullptr && std::string(cache_env) == "0") {
    options.enable_inference_cache = false;
  }
  return options;
}

}  // namespace themis::bench
