// Ablation (Sec 3's robustness claim): "the population aggregates do not
// need to be exact — they may contain errors, be computed at different
// times, or be purposely perturbed (e.g. differential privacy)". Sweeps
// multiplicative Gaussian noise on every published count and measures how
// each method's accuracy degrades on Flights SCorners. Expectation: errors
// grow smoothly with the noise level (no cliff), and the method ordering
// is preserved at realistic DP-ish noise levels.
#include "common.h"

#include "util/logging.h"

namespace themis::bench {
namespace {

void Run() {
  PrintHeader("Ablation", "Noisy / differentially-private aggregates");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  const double n = static_cast<double>(setup.population.num_rows());

  Rng query_rng(191);
  auto queries = workload::MakeMixedPointQueries(
      setup.population, 2, 4, workload::HitterClass::kRandom, scale.queries,
      query_rng);

  std::printf("  sigma    AQP     IPF      BB  Hybrid (avg perc diff)\n");
  for (double sigma : {0.0, 0.01, 0.05, 0.10, 0.20}) {
    aggregate::AggregateSet clean =
        MakePaperAggregates(setup.population, setup.covered_attrs, 5, 4);
    aggregate::AggregateSet noisy(setup.population.schema());
    Rng noise_rng(192);
    for (aggregate::AggregateSpec spec : clean.specs()) {
      aggregate::PerturbAggregate(spec, sigma, noise_rng);
      noisy.Add(std::move(spec));
    }
    auto suite = workload::MethodSuite::Build(setup.samples.at("SCorners"),
                                              noisy, n, BenchOptions());
    THEMIS_CHECK(suite.ok()) << suite.status().ToString();
    std::printf("  %.2f ", sigma);
    for (const char* method : {"AQP", "IPF", "BB", "Hybrid"}) {
      auto errors = suite->Errors(method, queries);
      THEMIS_CHECK(errors.ok());
      std::printf("  %6.1f", stats::Mean(*errors));
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
