// Reproduces Fig 3 and Table 4: heavy- and light-hitter point-query
// percent-difference boxplots over the four Flights samples with B = 4 2D
// aggregates (plus full 1D coverage), and the percentile improvement of
// Themis's hybrid over uniform reweighting. Shape to reproduce: hybrid
// lowest on supported samples; BB best on the unsupported Corners sample
// with hybrid ahead of IPF; reweighting saturates at 200 for light hitters.
#include "common.h"

#include "stats/descriptive.h"
#include "util/logging.h"

namespace themis::bench {
namespace {

void Run() {
  PrintHeader("Fig 3 + Table 4",
              "Flights heavy/light hitters, 4 2D aggregates");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  aggregate::AggregateSet aggregates =
      MakePaperAggregates(setup.population, setup.covered_attrs, 5, 4);

  Rng rng(41);
  auto heavy = workload::MakeMixedPointQueries(
      setup.population, 2, 5, workload::HitterClass::kHeavy, scale.queries,
      rng);
  auto light = workload::MakeMixedPointQueries(
      setup.population, 2, 5, workload::HitterClass::kLight, scale.queries,
      rng);

  for (const char* sample_name : {"Unif", "June", "SCorners", "Corners"}) {
    auto suite = workload::MethodSuite::Build(
        setup.samples.at(sample_name), aggregates,
        static_cast<double>(setup.population.num_rows()), BenchOptions());
    THEMIS_CHECK(suite.ok()) << suite.status().ToString();

    std::vector<double> aqp_heavy, hybrid_heavy, aqp_light, hybrid_light;
    for (const auto& [klass, queries] :
         {std::pair{"heavy", &heavy}, std::pair{"light", &light}}) {
      std::printf("-- %s, %s hitters (min/p25/med/p75/max) --\n",
                  sample_name, klass);
      for (const char* method : {"AQP", "IPF", "BB", "Hybrid"}) {
        auto errors = suite->Errors(method, *queries);
        THEMIS_CHECK(errors.ok());
        PrintBoxplotRow(method, *errors);
        if (std::string(method) == "AQP") {
          (std::string(klass) == "heavy" ? aqp_heavy : aqp_light) = *errors;
        }
        if (std::string(method) == "Hybrid") {
          (std::string(klass) == "heavy" ? hybrid_heavy : hybrid_light) =
              *errors;
        }
      }
    }
    // Table 4: improvement factor AQP percentile / hybrid percentile.
    std::printf("-- %s: Table 4 improvement (AQP pct / Hybrid pct) --\n",
                sample_name);
    for (double pct : {25.0, 50.0, 75.0}) {
      const double h_heavy = stats::Percentile(hybrid_heavy, pct);
      const double a_heavy = stats::Percentile(aqp_heavy, pct);
      const double h_light = stats::Percentile(hybrid_light, pct);
      const double a_light = stats::Percentile(aqp_light, pct);
      auto ratio = [](double a, double h) {
        return h <= 0 ? std::string("inf")
                      : StrFormat("%6.1f", a / h);
      };
      std::printf("  p%-3.0f  heavy %s   light %s\n", pct,
                  ratio(a_heavy, h_heavy).c_str(),
                  ratio(a_light, h_light).c_str());
    }
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
