// Reproduces Table 1 (Sec 2, motivating example): point queries counting
// short flights per origin state, answered from the raw biased sample, the
// uniformly rescaled sample (default AQP), a per-state reweighted sample
// (US State) and Themis's hybrid. Shape to reproduce: Raw/AQP far off,
// US State and Themis close, and only Themis answers for a state missing
// from the sample.
#include "common.h"

#include "core/evaluator.h"
#include "core/model.h"
#include "util/logging.h"

namespace themis::bench {
namespace {

using workload::FlightsAttrs;

void Run() {
  PrintHeader("Table 1", "Motivating example: short flights per state");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  const data::Table& population = setup.population;
  const data::Table& sample = setup.samples.at("SCorners");
  const double n = static_cast<double>(population.num_rows());

  aggregate::AggregateSet state_agg(population.schema());
  state_agg.Add(
      aggregate::ComputeAggregate(population, {FlightsAttrs::kOrigin}));

  core::ThemisOptions options = BenchOptions();
  options.population_size = n;

  // Raw: the sample queried verbatim (weight 1).
  options.enable_bn = false;
  options.reweight = core::ReweightMethod::kUniform;
  auto aqp_model = core::ThemisModel::Build(sample.Clone(),
                                            state_agg, options);
  THEMIS_CHECK(aqp_model.ok());
  // US State: exactly the N_state/n_state reweighting of Sec 2 — IPF with
  // the single per-state aggregate converges to it in one sweep.
  options.reweight = core::ReweightMethod::kIpf;
  auto state_model =
      core::ThemisModel::Build(sample.Clone(), state_agg, options);
  THEMIS_CHECK(state_model.ok());
  // Themis: IPF + BN hybrid.
  options.enable_bn = true;
  auto themis_model =
      core::ThemisModel::Build(sample.Clone(), state_agg, options);
  THEMIS_CHECK(themis_model.ok());

  core::HybridEvaluator aqp(&*aqp_model);
  core::HybridEvaluator state(&*state_model);
  core::HybridEvaluator themis(&*themis_model);

  const auto& domain = population.schema()->domain(FlightsAttrs::kOrigin);
  auto truth = population.GroupWeights(
      {FlightsAttrs::kElapsed, FlightsAttrs::kOrigin});
  auto raw = sample.GroupWeights(
      {FlightsAttrs::kElapsed, FlightsAttrs::kOrigin});

  std::printf("  Query (E<30min)   True      Raw      AQP  US State   Themis\n");
  for (const char* state_name : {"CA", "FL", "OH", "ME"}) {
    auto code = domain.Code(state_name);
    THEMIS_CHECK(code.ok());
    const data::TupleKey key = {0 /* E bucket [0,30) */, *code};
    const std::vector<size_t> attrs = {FlightsAttrs::kElapsed,
                                       FlightsAttrs::kOrigin};
    const double true_count = truth.count(key) ? truth.at(key) : 0;
    const double raw_count = raw.count(key) ? raw.at(key) : 0;
    auto aqp_est =
        aqp.PointEstimate(attrs, key, core::AnswerMode::kSampleOnly);
    auto state_est =
        state.PointEstimate(attrs, key, core::AnswerMode::kSampleOnly);
    auto themis_est = themis.PointEstimate(attrs, key);
    std::printf("  %-14s %7.0f  %7.0f  %7.0f  %8.0f  %7.1f\n", state_name,
                true_count, raw_count, aqp_est.ValueOr(0),
                state_est.ValueOr(0), themis_est.ValueOr(0));
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
