// Reproduces Table 5 + Fig 6: the six IDEBench-style SQL queries (group-by
// AVG/COUNT, filtered variants, and a self-join) on the Corners sample at
// 100% and 98% bias, reporting the average percent difference across the
// returned groups per method. Shape to reproduce: hybrid/BB win on most
// queries at 100% bias by missing fewer groups; Q3 is insensitive to the
// bias (its selection coincides with the bias); IPF wins the join query.
#include "common.h"

#include <map>

#include "stats/metrics.h"
#include "sql/executor.h"
#include "util/logging.h"

namespace themis::bench {
namespace {

using workload::FlightsAttrs;

/// The six queries of Table 5 (F = the flights sample table).
const std::vector<std::pair<std::string, std::string>> kQueries = {
    {"Q1", "SELECT origin_state, AVG(elapsed_time) FROM F "
           "GROUP BY origin_state"},
    {"Q2", "SELECT origin_state, AVG(elapsed_time) FROM F "
           "WHERE dest_state = 'CA' GROUP BY origin_state"},
    {"Q3", "SELECT dest_state, AVG(elapsed_time) FROM F "
           "WHERE origin_state = 'CA' GROUP BY dest_state"},
    {"Q4", "SELECT origin_state, COUNT(*) FROM F "
           "WHERE elapsed_time < 120 GROUP BY origin_state"},
    {"Q5", "SELECT dest_state, COUNT(*) FROM F "
           "WHERE elapsed_time < 120 GROUP BY dest_state"},
    {"Q6", "SELECT t.origin_state, s.dest_state, COUNT(*) FROM F t, F s "
           "WHERE t.dest_state = s.origin_state "
           "AND t.dest_state IN ('CO', 'WY') "
           "GROUP BY t.origin_state, s.dest_state"},
};

/// Average percent difference between a truth result and an estimate,
/// across the union of groups (missed/phantom groups cost 200).
double ResultError(const sql::QueryResult& truth,
                   const sql::QueryResult& estimate) {
  auto t = truth.ValueMap();
  auto e = estimate.ValueMap();
  if (t.empty() && e.empty()) return 0;
  double total = 0;
  size_t count = 0;
  for (const auto& [key, tv] : t) {
    auto it = e.find(key);
    total += it == e.end() ? stats::kMaxPercentDifference
                           : stats::PercentDifference(tv, it->second);
    ++count;
  }
  for (const auto& [key, ev] : e) {
    if (!t.count(key)) {
      total += stats::kMaxPercentDifference;
      ++count;
    }
  }
  return total / static_cast<double>(count);
}

void Run() {
  PrintHeader("Table 5 + Fig 6", "Six SQL queries, Corners vs SCorners-98");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  aggregate::AggregateSet aggregates =
      MakePaperAggregates(setup.population, setup.covered_attrs, 5, 4);

  // Ground truth from the population.
  sql::Executor truth_executor;
  truth_executor.RegisterTable("F", &setup.population);
  std::map<std::string, sql::QueryResult> truth;
  for (const auto& [id, query] : kQueries) {
    auto result = truth_executor.Query(query);
    THEMIS_CHECK(result.ok()) << id << ": " << result.status().ToString();
    truth.emplace(id, std::move(result).value());
  }

  const workload::SelectionCriterion corners{
      FlightsAttrs::kOrigin, {"CA", "NY", "FL", "WA"}};
  for (double bias : {1.0, 0.98}) {
    Rng rng(61);
    auto sample =
        workload::BiasedSample(setup.population, 0.1, bias, corners, rng);
    THEMIS_CHECK(sample.ok());
    core::ThemisOptions options = BenchOptions();
    auto suite = workload::MethodSuite::Build(
        *sample, aggregates,
        static_cast<double>(setup.population.num_rows()), options);
    THEMIS_CHECK(suite.ok()) << suite.status().ToString();

    std::printf("-- bias %.2f (avg group error per query) --\n", bias);
    std::printf("  method    Q1      Q2      Q3      Q4      Q5      Q6\n");
    for (const char* method : {"AQP", "IPF", "BB", "Hybrid"}) {
      std::printf("  %-7s", method);
      for (const auto& [id, query] : kQueries) {
        std::string rewritten = query;
        // The sample table is registered as "sample" by the evaluator.
        size_t pos;
        while ((pos = rewritten.find(" F ")) != std::string::npos) {
          rewritten.replace(pos, 3, " sample ");
        }
        auto result = suite->Query(method, rewritten);
        if (!result.ok()) {
          std::printf("    err ");
          continue;
        }
        std::printf(" %7.1f", ResultError(truth.at(id), *result));
      }
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
