#ifndef THEMIS_BENCH_COMMON_H_
#define THEMIS_BENCH_COMMON_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "aggregate/aggregate.h"
#include "core/options.h"
#include "stats/descriptive.h"
#include "util/string_util.h"
#include "data/table.h"
#include "workload/experiment.h"
#include "workload/flights.h"
#include "workload/imdb.h"
#include "workload/queries.h"
#include "workload/sampler.h"

namespace themis::bench {

/// Shared configuration of the benchmark harnesses. Default sizes are
/// scaled down from the paper (see DESIGN.md); THEMIS_SCALE multiplies
/// them so larger runs are one environment variable away.
struct BenchScale {
  size_t flights_rows;
  size_t imdb_rows;
  size_t queries;  // point queries per class (paper: 100)
  BenchScale();
};

/// Prints the standard bench banner.
void PrintHeader(const std::string& id, const std::string& title);

/// Prints one "method: boxplot" row.
void PrintBoxplotRow(const std::string& label,
                     const std::vector<double>& errors);

/// Prints one "method: mean" row.
void PrintMeanRow(const std::string& label,
                  const std::vector<double>& errors);

/// A generated population with its named biased samples.
struct DatasetSetup {
  data::Table population;
  std::map<std::string, data::Table> samples;
  /// Attribute indices covered by published aggregates (all 5 for
  /// flights; MY/MC/G/RG/RT for IMDB, Sec 6.2).
  std::vector<size_t> covered_attrs;
};

/// Flights with the paper's four samples (Unif / June / SCorners /
/// Corners), 10% sampling fraction.
DatasetSetup MakeFlights(const BenchScale& scale, uint64_t seed = 1);

/// IMDB with the paper's four samples (Unif / GB / SR159 / R159).
DatasetSetup MakeImdb(const BenchScale& scale, uint64_t seed = 2);

/// The aggregate configuration used throughout Sec 6: all 1D aggregates
/// over `covered`, plus the `budget_2d` / `budget_3d` most informative
/// multi-dimensional aggregates chosen by t-cherry pruning over all
/// candidates (the analog of Table 3).
aggregate::AggregateSet MakePaperAggregates(const data::Table& population,
                                            const std::vector<size_t>& covered,
                                            size_t num_1d, size_t budget_2d,
                                            size_t budget_3d = 0);

/// Default Themis options for benches (tree BN, paper's K = 10).
core::ThemisOptions BenchOptions();

}  // namespace themis::bench

#endif  // THEMIS_BENCH_COMMON_H_
