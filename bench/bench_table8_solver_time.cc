// Reproduces Table 8: structure- and parameter-learning wall times for
// LinReg, IPF and BB on IMDB SR159 as aggregates are added (1..5 1D, then
// +1..4 2D). Shape to reproduce: structure learning is negligible next to
// parameter solving; LinReg fastest, then IPF, then BB; BB's parameter
// time does not blow up as 2D aggregates are added (the Sec 5.2
// simplification at work — more direct equality constraints). Also prints
// the constraint-count blowup the *unsimplified* Eq. 2 formulation would
// face, the ablation DESIGN.md calls out.
#include "common.h"

#include "bn/learn.h"
#include "reweight/ipf.h"
#include "reweight/linreg.h"
#include "util/logging.h"
#include "util/timer.h"

namespace themis::bench {
namespace {

void Run() {
  PrintHeader("Table 8", "Solver times on IMDB SR159 (seconds)");
  BenchScale scale;
  DatasetSetup setup = MakeImdb(scale);
  const double n = static_cast<double>(setup.population.num_rows());
  const data::Table& sample = setup.samples.at("SR159");

  std::printf(
      "  #1D  #2D   LinReg      IPF   BB-struct  BB-param  (unsimplified "
      "product terms)\n");
  struct Config {
    size_t num_1d, num_2d;
  };
  const std::vector<Config> configs = {{1, 0}, {2, 0}, {3, 0}, {4, 0},
                                       {5, 0}, {5, 1}, {5, 2}, {5, 3},
                                       {5, 4}};
  for (const Config& config : configs) {
    aggregate::AggregateSet aggregates = MakePaperAggregates(
        setup.population, setup.covered_attrs, config.num_1d, config.num_2d);

    Timer timer;
    {
      data::Table s = sample.Clone();
      reweight::LinRegReweighter rw;
      THEMIS_CHECK_OK(rw.Reweight(s, aggregates, n));
    }
    const double linreg_seconds = timer.Seconds();

    timer.Restart();
    {
      data::Table s = sample.Clone();
      reweight::IpfReweighter rw;
      THEMIS_CHECK_OK(rw.Reweight(s, aggregates, n));
    }
    const double ipf_seconds = timer.Seconds();

    bn::BnLearnOptions options;
    options.variant = bn::BnVariant::kBB;
    bn::BnLearnStats stats;
    auto network = bn::LearnBayesNet(sample.schema(), &sample, &aggregates,
                                     options, &stats);
    THEMIS_CHECK(network.ok()) << network.status().ToString();

    // Ablation: the unsimplified Eq. 2 has O(prod_{j not in gamma} N_j)
    // product terms per aggregate group — count them to show why the
    // paper's experiments never finished without Sec 5.2.
    double unsimplified_terms = 0;
    for (const auto& spec : aggregates.specs()) {
      double per_group = 1;
      for (size_t a = 0; a < sample.schema()->num_attributes(); ++a) {
        if (!std::binary_search(spec.attrs.begin(), spec.attrs.end(), a)) {
          per_group *= static_cast<double>(sample.schema()->domain(a).size());
        }
      }
      unsimplified_terms += per_group * spec.num_groups();
    }

    std::printf("  %3zu  %3zu  %7.3f  %7.3f   %9.3f  %8.3f  (%.2e)\n",
                config.num_1d, config.num_2d, linreg_seconds, ipf_seconds,
                stats.structure_seconds, stats.parameter_seconds,
                unsimplified_terms);
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
