// Multi-relation catalog micro-bench: flights and IMDb coexist in one
// ThemisDb (two independently-modeled relations on one thread pool) and a
// cross-relation QueryBatch interleaves both workloads. Every interleaved
// answer must be bitwise identical to the same query on a dedicated
// single-relation ThemisDb — any divergence aborts.
//
//   ./bench_multi_relation [rounds] [--strict]
//
// Timing compares the combined batch (hw-sized pool) against a sequential
// Query() loop routed across two dedicated 1-thread instances — the
// serving setup the catalog replaces: one process per relation, no
// cross-query parallelism. Pool size never changes answers (fixed shard
// layout, shard-order merges), so the bitwise check spans pool sizes too.
// The acceptance bar is >= 1.5x; --strict turns the bar into the exit
// code (without it timing stays informational — wall-clock gates flake on
// noisy shared runners).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"

#include "core/query_plan.h"
#include "core/themis_db.h"
#include "util/logging.h"
#include "util/timer.h"

namespace themis::bench {
namespace {

/// Mixed per-relation workload: every 1D and 2D GROUP BY over the schema,
/// plus point lookups, all FROM `table`.
std::vector<std::string> MakeRelationWorkload(const DatasetSetup& setup,
                                              const std::string& table,
                                              size_t num_points) {
  const data::SchemaPtr& schema = setup.population.schema();
  std::vector<std::string> sqls;

  Rng rng(2026);
  const auto points = workload::MakeMixedPointQueries(
      setup.population, 2, 3, workload::HitterClass::kRandom, num_points,
      rng);
  for (const auto& q : points) {
    std::string sql = "SELECT COUNT(*) FROM " + table + " WHERE ";
    for (size_t i = 0; i < q.attrs.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += schema->domain(q.attrs[i]).name() + " = '" +
             schema->domain(q.attrs[i]).Label(q.values[i]) + "'";
    }
    sqls.push_back(std::move(sql));
  }
  for (size_t a = 0; a < schema->num_attributes(); ++a) {
    sqls.push_back("SELECT " + schema->domain(a).name() +
                   ", COUNT(*) FROM " + table + " GROUP BY " +
                   schema->domain(a).name());
    for (size_t b = a + 1; b < schema->num_attributes(); ++b) {
      sqls.push_back("SELECT " + schema->domain(a).name() + ", " +
                     schema->domain(b).name() + ", COUNT(*) FROM " + table +
                     " GROUP BY " + schema->domain(a).name() + ", " +
                     schema->domain(b).name());
    }
  }
  return sqls;
}

void CheckIdentical(const sql::QueryResult& a, const sql::QueryResult& b,
                    const std::string& what) {
  THEMIS_CHECK(a.rows.size() == b.rows.size()) << what;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    THEMIS_CHECK(a.rows[i].group == b.rows[i].group) << what;
    // Bitwise double equality, not approximate.
    THEMIS_CHECK(a.rows[i].values == b.rows[i].values) << what;
  }
}

int Run(size_t rounds, bool strict) {
  PrintHeader("Multi-relation catalog micro-bench",
              "interleaved flights+IMDb batch vs two dedicated instances");
  BenchScale scale;
  DatasetSetup flights = MakeFlights(scale);
  DatasetSetup imdb = MakeImdb(scale);
  aggregate::AggregateSet flights_aggs =
      MakePaperAggregates(flights.population, flights.covered_attrs, 5, 4);
  aggregate::AggregateSet imdb_aggs =
      MakePaperAggregates(imdb.population, imdb.covered_attrs, 5, 4);

  // No result memo: the sequential loop must execute, not read a memo the
  // batch warmed (the inference caches warm equally for both paths below).
  core::ThemisOptions options = BenchOptions();
  options.enable_result_memo = false;

  auto insert = [&](core::ThemisDb& db, const char* name,
                    const DatasetSetup& setup,
                    const aggregate::AggregateSet& aggs,
                    const char* sample_name) {
    THEMIS_CHECK_OK(
        db.InsertSample(name, setup.samples.at(sample_name).Clone()));
    for (const auto& spec : aggs.specs()) {
      THEMIS_CHECK_OK(db.InsertAggregate(name, spec));
    }
  };

  Timer build_timer;
  core::ThemisDb combined(options);
  insert(combined, "flights", flights, flights_aggs, "Corners");
  insert(combined, "imdb", imdb, imdb_aggs, "R159");
  THEMIS_CHECK_OK(combined.Build());  // both models learn in parallel
  std::printf("  combined build (2 relations, parallel): %.2fs\n",
              build_timer.Seconds());

  build_timer.Restart();
  // The dedicated pair runs 1-thread pools: the per-relation-process
  // baseline with no cross-query parallelism (answers are pool-size
  // independent, so the bitwise check below still must hold).
  core::ThemisOptions dedicated_options = options;
  dedicated_options.num_threads = 1;
  core::ThemisDb flights_only(dedicated_options);
  insert(flights_only, "flights", flights, flights_aggs, "Corners");
  THEMIS_CHECK_OK(flights_only.Build());
  core::ThemisDb imdb_only(dedicated_options);
  insert(imdb_only, "imdb", imdb, imdb_aggs, "R159");
  THEMIS_CHECK_OK(imdb_only.Build());
  std::printf("  dedicated builds (2 instances, serial):  %.2fs\n",
              build_timer.Seconds());

  // Strictly interleaved cross-relation workload.
  const std::vector<std::string> flights_sqls =
      MakeRelationWorkload(flights, "flights", 30);
  const std::vector<std::string> imdb_sqls =
      MakeRelationWorkload(imdb, "imdb", 30);
  std::vector<std::string> sqls;
  const size_t target = 240;
  for (size_t i = 0; sqls.size() < target; ++i) {
    sqls.push_back(flights_sqls[i % flights_sqls.size()]);
    sqls.push_back(imdb_sqls[i % imdb_sqls.size()]);
  }
  std::printf("  %zu interleaved queries x %zu rounds\n", sqls.size(),
              rounds);

  // Routes one query to its dedicated instance by its FROM table.
  auto dedicated_for =
      [&](const std::string& sql) -> const core::ThemisDb& {
    auto from = core::FirstFromTable(sql);
    THEMIS_CHECK(from.ok()) << sql;
    return *from == "flights" ? flights_only : imdb_only;
  };

  // Correctness first (this also warms both inference caches equally):
  // the combined batch answer must equal the dedicated instance's answer
  // bit for bit, query by query.
  auto batch = combined.QueryBatch(sqls);
  THEMIS_CHECK(batch.ok()) << batch.status().ToString();
  for (size_t q = 0; q < sqls.size(); ++q) {
    auto dedicated = dedicated_for(sqls[q]).Query(sqls[q]);
    THEMIS_CHECK(dedicated.ok()) << dedicated.status().ToString();
    CheckIdentical((*batch)[q], *dedicated, sqls[q]);
  }
  std::printf("  combined vs dedicated answers bitwise-identical: yes\n");

  // Timing: interleaved batch on the catalog vs a sequential loop routed
  // across the dedicated pair.
  Timer timer;
  for (size_t r = 0; r < rounds; ++r) {
    for (const std::string& sql : sqls) {
      auto result = dedicated_for(sql).Query(sql);
      THEMIS_CHECK(result.ok()) << result.status().ToString();
    }
  }
  const double loop_qps =
      static_cast<double>(sqls.size() * rounds) / timer.Seconds();

  timer.Restart();
  for (size_t r = 0; r < rounds; ++r) {
    auto timed = combined.QueryBatch(sqls);
    THEMIS_CHECK(timed.ok()) << timed.status().ToString();
  }
  const double batch_qps =
      static_cast<double>(sqls.size() * rounds) / timer.Seconds();

  const double speedup = loop_qps > 0 ? batch_qps / loop_qps : 0;
  std::printf("  dedicated 1-thread loop: %.0f q/s   combined batch: %.0f q/s\n",
              loop_qps, batch_qps);
  std::printf("  cross-relation batch speedup: %.2fx %s\n", speedup,
              speedup >= 1.5 ? "(>= 1.5x: catalog win demonstrated)"
                             : "(below the 1.5x bar)");
  return (strict && speedup < 1.5) ? 1 : 0;
}

}  // namespace
}  // namespace themis::bench

int main(int argc, char** argv) {
  size_t rounds = 3;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      rounds = static_cast<size_t>(std::strtoul(argv[i], nullptr, 10));
    }
  }
  if (rounds == 0) rounds = 1;
  return themis::bench::Run(rounds, strict);
}
