// Reproduces Fig 16: average percent difference versus total solver time
// (structure + parameter learning for BB; weight fitting for IPF) on IMDB
// SR159 across 1D/2D aggregate combinations. Shape to reproduce: IPF is
// almost always faster; BB reaches lower error, and its best error arrives
// at the configurations with the most 2D aggregates.
#include "common.h"

#include "bn/inference.h"
#include "bn/learn.h"
#include "reweight/ipf.h"
#include "stats/metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace themis::bench {
namespace {

std::vector<double> SampleErrors(
    const data::Table& sample,
    const std::vector<workload::PointQuery>& queries) {
  std::vector<double> errors;
  errors.reserve(queries.size());
  for (const auto& query : queries) {
    auto groups = sample.GroupWeights(query.attrs);
    auto it = groups.find(query.values);
    const double estimate = it == groups.end() ? 0.0 : it->second;
    errors.push_back(stats::PercentDifference(query.true_count, estimate));
  }
  return errors;
}

std::vector<double> BnErrors(const bn::BayesianNetwork& network, double n,
                             const std::vector<workload::PointQuery>& queries) {
  bn::VariableElimination ve(&network);
  std::vector<double> errors;
  errors.reserve(queries.size());
  for (const auto& query : queries) {
    bn::Evidence evidence;
    for (size_t i = 0; i < query.attrs.size(); ++i) {
      evidence[query.attrs[i]] = query.values[i];
    }
    auto p = ve.Probability(evidence);
    errors.push_back(stats::PercentDifference(
        query.true_count, p.ok() ? n * *p : 0.0));
  }
  return errors;
}

void Run() {
  PrintHeader("Fig 16", "Error vs solver time on IMDB SR159");
  BenchScale scale;
  DatasetSetup setup = MakeImdb(scale);
  const double n = static_cast<double>(setup.population.num_rows());
  const data::Table& sample = setup.samples.at("SR159");

  Rng rng(161);
  auto queries = workload::MakeMixedPointQueries(
      setup.population, 2, 3, workload::HitterClass::kRandom, scale.queries,
      rng);

  std::printf("  method  #1D  #2D   solver_s  avg_err\n");
  for (size_t num_1d : {1ul, 3ul, 5ul}) {
    for (size_t num_2d : {0ul, 1ul, 2ul, 4ul}) {
      aggregate::AggregateSet aggregates = MakePaperAggregates(
          setup.population, setup.covered_attrs, num_1d, num_2d);
      // IPF: solver time = weight fitting.
      {
        data::Table s = sample.Clone();
        reweight::IpfReweighter rw;
        Timer timer;
        THEMIS_CHECK_OK(rw.Reweight(s, aggregates, n));
        const double seconds = timer.Seconds();
        auto errors = SampleErrors(s, queries);
        std::printf("  IPF     %3zu  %3zu   %8.3f  %7.1f\n", num_1d, num_2d,
                    seconds, stats::Mean(errors));
      }
      // BB: solver time = structure + parameter learning.
      {
        bn::BnLearnOptions options;
        options.variant = bn::BnVariant::kBB;
        bn::BnLearnStats stats_out;
        Timer timer;
        auto network = bn::LearnBayesNet(sample.schema(), &sample,
                                         &aggregates, options, &stats_out);
        const double seconds = timer.Seconds();
        THEMIS_CHECK(network.ok()) << network.status().ToString();
        auto errors = BnErrors(*network, n, queries);
        std::printf("  BB      %3zu  %3zu   %8.3f  %7.1f\n", num_1d, num_2d,
                    seconds, stats::Mean(errors));
      }
    }
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
