// Reproduces Fig 11: Flights 3D aggregate sweep after 5 1D. Shape to reproduce: BB improves the most as
// multi-dimensional aggregates are added (converging towards hybrid)
// while IPF shows diminishing returns (Sec 6.5).
#include "knowledge_sweep.h"

int main() {
  using namespace themis::bench;
  PrintHeader("Fig 11", "Flights 3D aggregate sweep after 5 1D");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  RunMultiDimSweep(setup, {"SCorners", "June"}, 3, scale, 72);
  return 0;
}
