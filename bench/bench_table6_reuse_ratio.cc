// Reproduces Table 6: the error ratio of Themis's hybrid over the reuse
// baseline of Galakatos et al. [33] for GROUP BY COUNT(*) queries over
// O-DE and DT-DE as the Corners bias decreases, using a single 1D
// aggregate over O. Shape to reproduce: ratio ≈ 1 for O-DE (both exploit
// the O aggregate); ratio well above 1... inverted: the paper reports
// err_Themis/err_[33] — ≈1 on O-DE and *below* is better; on DT-DE the
// baseline cannot use the aggregate (falls back to uniform) so the ratio
// moves in Themis's favor as reported (values > 1 in the paper's table
// denote [33]'s error exceeding Themis's by that factor; we print
// err_[33]/err_Themis so larger = Themis better, matching the narrative).
#include "common.h"

#include "stats/metrics.h"
#include "workload/reuse_baseline.h"
#include "util/logging.h"

namespace themis::bench {
namespace {

using workload::FlightsAttrs;

/// The 2D GROUP BY COUNT(*) SQL for an attribute pair.
std::string PairSql(const data::Schema& schema, size_t attr_a,
                    size_t attr_b) {
  return StrFormat("SELECT %s, %s, COUNT(*) FROM sample GROUP BY %s, %s",
                   schema.attribute_name(attr_a).c_str(),
                   schema.attribute_name(attr_b).c_str(),
                   schema.attribute_name(attr_a).c_str(),
                   schema.attribute_name(attr_b).c_str());
}

/// A group-by result as a key->count map on codes.
std::unordered_map<data::TupleKey, double, data::TupleKeyHash> ResultToCodes(
    const sql::QueryResult& result, const data::Schema& schema, size_t attr_a,
    size_t attr_b) {
  std::unordered_map<data::TupleKey, double, data::TupleKeyHash> out;
  for (const auto& row : result.rows) {
    auto ca = schema.domain(attr_a).Code(row.group[0]);
    auto cb = schema.domain(attr_b).Code(row.group[1]);
    THEMIS_CHECK(ca.ok() && cb.ok());
    out[{*ca, *cb}] = row.values[0];
  }
  return out;
}

void Run() {
  PrintHeader("Table 6",
              "Hybrid vs reuse baseline [33], 1D aggregate over O");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  const double n = static_cast<double>(setup.population.num_rows());
  aggregate::AggregateSet aggregates(setup.population.schema());
  aggregates.Add(aggregate::ComputeAggregate(setup.population,
                                             {FlightsAttrs::kOrigin}));

  const workload::SelectionCriterion corners{
      FlightsAttrs::kOrigin, {"CA", "NY", "FL", "WA"}};
  const std::vector<std::pair<std::string, std::pair<size_t, size_t>>>
      pairs = {{"O-DE", {FlightsAttrs::kOrigin, FlightsAttrs::kDest}},
               {"DT-DE", {FlightsAttrs::kDistance, FlightsAttrs::kDest}}};

  std::printf("  (err_[33] / err_Themis; >1 means Themis wins)\n");
  std::printf("  bias     O-DE    DT-DE\n");
  for (double bias : {1.0, 0.98, 0.96, 0.94, 0.92, 0.90}) {
    Rng rng(62);
    auto sample =
        workload::BiasedSample(setup.population, 0.1, bias, corners, rng);
    THEMIS_CHECK(sample.ok());
    auto suite =
        workload::MethodSuite::Build(*sample, aggregates, n, BenchOptions());
    THEMIS_CHECK(suite.ok()) << suite.status().ToString();
    // [33] conditions on the *raw* sample (unit weights) and reuses only
    // the known Pr(O) from the aggregate.
    workload::ReuseBaseline baseline(&*sample, &aggregates, n);

    // Both pair queries go through the engine's batch path: planned up
    // front, K BN executors evaluated in parallel per GROUP BY plan.
    std::vector<std::string> sqls;
    for (const auto& pair : pairs) {
      sqls.push_back(PairSql(*setup.population.schema(), pair.second.first,
                             pair.second.second));
    }
    auto batch = suite->QueryBatch("Hybrid", sqls);
    THEMIS_CHECK(batch.ok()) << batch.status().ToString();

    std::printf("  %.2f", bias);
    for (size_t p = 0; p < pairs.size(); ++p) {
      const auto& attr_pair = pairs[p].second;
      auto truth =
          setup.population.GroupWeights({attr_pair.first, attr_pair.second});
      auto themis_est = ResultToCodes((*batch)[p], *setup.population.schema(),
                                      attr_pair.first, attr_pair.second);
      auto reuse_est =
          baseline.GroupByPair(attr_pair.first, attr_pair.second);
      THEMIS_CHECK(reuse_est.ok());
      const double themis_err =
          stats::GroupByPercentDifference(truth, themis_est);
      const double reuse_err =
          stats::GroupByPercentDifference(truth, *reuse_est);
      std::printf("  %6.2f", themis_err > 0 ? reuse_err / themis_err : 99.0);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
