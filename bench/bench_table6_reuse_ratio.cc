// Reproduces Table 6: the error ratio of Themis's hybrid over the reuse
// baseline of Galakatos et al. [33] for GROUP BY COUNT(*) queries over
// O-DE and DT-DE as the Corners bias decreases, using a single 1D
// aggregate over O. Shape to reproduce: ratio ≈ 1 for O-DE (both exploit
// the O aggregate); ratio well above 1... inverted: the paper reports
// err_Themis/err_[33] — ≈1 on O-DE and *below* is better; on DT-DE the
// baseline cannot use the aggregate (falls back to uniform) so the ratio
// moves in Themis's favor as reported (values > 1 in the paper's table
// denote [33]'s error exceeding Themis's by that factor; we print
// err_[33]/err_Themis so larger = Themis better, matching the narrative).
#include "common.h"

#include "stats/metrics.h"
#include "workload/reuse_baseline.h"
#include "util/logging.h"

namespace themis::bench {
namespace {

using workload::FlightsAttrs;

/// Group-by estimate from an evaluator, as a key->count map on codes.
std::unordered_map<data::TupleKey, double, data::TupleKeyHash> HybridGroupBy(
    const workload::MethodSuite& suite, const data::Table& population,
    size_t attr_a, size_t attr_b) {
  const auto& schema = *population.schema();
  std::string sql = StrFormat(
      "SELECT %s, %s, COUNT(*) FROM sample GROUP BY %s, %s",
      schema.attribute_name(attr_a).c_str(),
      schema.attribute_name(attr_b).c_str(),
      schema.attribute_name(attr_a).c_str(),
      schema.attribute_name(attr_b).c_str());
  auto result = suite.Query("Hybrid", sql);
  THEMIS_CHECK(result.ok()) << result.status().ToString();
  std::unordered_map<data::TupleKey, double, data::TupleKeyHash> out;
  for (const auto& row : result->rows) {
    auto ca = schema.domain(attr_a).Code(row.group[0]);
    auto cb = schema.domain(attr_b).Code(row.group[1]);
    THEMIS_CHECK(ca.ok() && cb.ok());
    out[{*ca, *cb}] = row.values[0];
  }
  return out;
}

void Run() {
  PrintHeader("Table 6",
              "Hybrid vs reuse baseline [33], 1D aggregate over O");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  const double n = static_cast<double>(setup.population.num_rows());
  aggregate::AggregateSet aggregates(setup.population.schema());
  aggregates.Add(aggregate::ComputeAggregate(setup.population,
                                             {FlightsAttrs::kOrigin}));

  const workload::SelectionCriterion corners{
      FlightsAttrs::kOrigin, {"CA", "NY", "FL", "WA"}};
  const std::vector<std::pair<std::string, std::pair<size_t, size_t>>>
      pairs = {{"O-DE", {FlightsAttrs::kOrigin, FlightsAttrs::kDest}},
               {"DT-DE", {FlightsAttrs::kDistance, FlightsAttrs::kDest}}};

  std::printf("  (err_[33] / err_Themis; >1 means Themis wins)\n");
  std::printf("  bias     O-DE    DT-DE\n");
  for (double bias : {1.0, 0.98, 0.96, 0.94, 0.92, 0.90}) {
    Rng rng(62);
    auto sample =
        workload::BiasedSample(setup.population, 0.1, bias, corners, rng);
    THEMIS_CHECK(sample.ok());
    auto suite =
        workload::MethodSuite::Build(*sample, aggregates, n, BenchOptions());
    THEMIS_CHECK(suite.ok()) << suite.status().ToString();
    // [33] conditions on the *raw* sample (unit weights) and reuses only
    // the known Pr(O) from the aggregate.
    workload::ReuseBaseline baseline(&*sample, &aggregates, n);

    std::printf("  %.2f", bias);
    for (const auto& [label, attr_pair] : pairs) {
      auto truth =
          setup.population.GroupWeights({attr_pair.first, attr_pair.second});
      auto themis_est = HybridGroupBy(*suite, setup.population,
                                      attr_pair.first, attr_pair.second);
      auto reuse_est =
          baseline.GroupByPair(attr_pair.first, attr_pair.second);
      THEMIS_CHECK(reuse_est.ok());
      const double themis_err =
          stats::GroupByPercentDifference(truth, themis_est);
      const double reuse_err =
          stats::GroupByPercentDifference(truth, *reuse_est);
      std::printf("  %6.2f", themis_err > 0 ? reuse_err / themis_err : 99.0);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
