// Closed-loop multi-client serving bench: a server::QueryServer fronts a
// two-relation catalog (flights + IMDb) and N client threads each loop a
// mixed cross-relation workload over the wire. Every served answer is
// bitwise-checked against a sequential in-process Query() loop — any
// divergence aborts — across pool sizes 1 / 2 / hardware and client
// counts 1 / 4.
//
//   ./bench_serving [rounds] [--strict] [--smoke] [--json PATH]
//                   [--connections N] [--metrics-out PATH]
//                   [--no-response-cache]
//
// Timing is informational by default (wall-clock gates flake on noisy
// shared runners); --strict turns the concurrency bar — 4 clients on the
// hardware pool >= 1.3x the single-client throughput on the same pool —
// into the exit code. --json writes a machine-readable snapshot whose
// "gate" object holds the ratios tools/check_bench.py compares.
//
// --smoke runs the CI smoke sequence instead: start a server with
// tracing armed, issue a point query, a GROUP BY, a STATS probe, and a
// deterministic overload rejection (admission slot held open by a
// request hook), scrape METRICS and check the request-latency histogram
// count equals served_ok + served_error, then shut down gracefully.
// Exit code 0 only if every step behaves. --metrics-out PATH writes the
// scraped Prometheus exposition to PATH (also honored by --connections
// mode) so CI can validate it with tools/check_metrics.py.
//
// --connections N switches to the open-loop mode that the epoll serving
// core exists for: N idle connections stay parked (costing the server no
// threads) while 64 active clients stream the workload, every answer
// bitwise-checked; reports aggregate q/s plus p50/p99 per-request
// latency, and --json writes them (latency keys end in _ms so
// tools/check_bench.py gates them lower-is-better). With --smoke the
// sweep shrinks to one round — the CI high-connection smoke.
//
// --dupes switches to the duplicate-heavy thundering-herd mode: 16
// clients stream the same Zipf-skewed GROUP BY sequence against a
// baseline server (micro-batching, single-flight coalescing, and the
// response byte cache all disabled) and a fully hot-pathed one (all
// three enabled), bitwise-checking every answer; the gate is the QPS
// ratio. Ends with a deterministic leader-parked coalescing probe so
// the CI smoke's coalesced_hits assertion never depends on scheduler
// timing.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.h"

#include "core/themis_db.h"
#include "obs/histogram.h"
#include "server/client.h"
#include "server/query_server.h"
#include "util/logging.h"
#include "util/timer.h"

namespace themis::bench {
namespace {

/// Value of a plain `name value` sample line in a Prometheus text
/// exposition (counters and histogram _count/_sum lines; not labeled
/// samples). CHECK-fails if the sample is absent.
double MetricValue(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t end = text.find('\n', pos);
    const std::string line =
        text.substr(pos, end == std::string::npos ? end : end - pos);
    if (line.size() > name.size() + 1 && line.compare(0, name.size(), name) == 0 &&
        line[name.size()] == ' ') {
      return std::strtod(line.c_str() + name.size() + 1, nullptr);
    }
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  THEMIS_CHECK(false) << "metric sample not found: " << name;
  return 0;
}

/// Writes the METRICS exposition to `path` (no-op when empty) so CI can
/// hand it to tools/check_metrics.py.
void WriteMetricsOut(const std::string& path, const std::string& text) {
  if (path.empty()) return;
  std::ofstream out(path);
  THEMIS_CHECK(out.good()) << path;
  out << text;
  std::printf("  wrote %s\n", path.c_str());
}

/// Mixed per-relation workload: point lookups plus every 1D and 2D
/// GROUP BY over the schema, all FROM `table`.
std::vector<std::string> MakeRelationWorkload(const DatasetSetup& setup,
                                              const std::string& table,
                                              size_t num_points) {
  const data::SchemaPtr& schema = setup.population.schema();
  std::vector<std::string> sqls;

  Rng rng(2026);
  const auto points = workload::MakeMixedPointQueries(
      setup.population, 2, 3, workload::HitterClass::kRandom, num_points,
      rng);
  for (const auto& q : points) {
    std::string sql = "SELECT COUNT(*) FROM " + table + " WHERE ";
    for (size_t i = 0; i < q.attrs.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += schema->domain(q.attrs[i]).name() + " = '" +
             schema->domain(q.attrs[i]).Label(q.values[i]) + "'";
    }
    sqls.push_back(std::move(sql));
  }
  for (size_t a = 0; a < schema->num_attributes(); ++a) {
    sqls.push_back("SELECT " + schema->domain(a).name() +
                   ", COUNT(*) FROM " + table + " GROUP BY " +
                   schema->domain(a).name());
    for (size_t b = a + 1; b < schema->num_attributes(); ++b) {
      sqls.push_back("SELECT " + schema->domain(a).name() + ", " +
                     schema->domain(b).name() + ", COUNT(*) FROM " + table +
                     " GROUP BY " + schema->domain(a).name() + ", " +
                     schema->domain(b).name());
    }
  }
  return sqls;
}

void CheckIdentical(const sql::QueryResult& a, const sql::QueryResult& b,
                    const std::string& what) {
  THEMIS_CHECK(a.rows.size() == b.rows.size()) << what;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    THEMIS_CHECK(a.rows[i].group == b.rows[i].group) << what;
    // Bitwise double equality, not approximate.
    THEMIS_CHECK(a.rows[i].values == b.rows[i].values) << what;
  }
}

core::ThemisDb BuildCombinedDb(const DatasetSetup& flights,
                               const DatasetSetup& imdb,
                               const aggregate::AggregateSet& flights_aggs,
                               const aggregate::AggregateSet& imdb_aggs,
                               size_t num_threads) {
  core::ThemisOptions options = BenchOptions();
  options.num_threads = num_threads;
  core::ThemisDb db(options);
  THEMIS_CHECK_OK(db.InsertSample("flights", flights.samples.at("Corners").Clone()));
  for (const auto& spec : flights_aggs.specs()) {
    THEMIS_CHECK_OK(db.InsertAggregate("flights", spec));
  }
  THEMIS_CHECK_OK(db.InsertSample("imdb", imdb.samples.at("R159").Clone()));
  for (const auto& spec : imdb_aggs.specs()) {
    THEMIS_CHECK_OK(db.InsertAggregate("imdb", spec));
  }
  THEMIS_CHECK_OK(db.Build());
  return db;
}

/// One closed-loop cell: `num_clients` threads, each its own connection,
/// looping the interleaved workload `rounds` times with a staggered
/// offset; every answer bitwise-checked. Returns queries per second.
double RunClients(uint16_t port, const std::vector<std::string>& sqls,
                  const std::vector<sql::QueryResult>& expected,
                  size_t num_clients, size_t rounds) {
  Timer timer;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = server::Client::Connect(port);
      THEMIS_CHECK(client.ok()) << client.status().ToString();
      for (size_t round = 0; round < rounds; ++round) {
        for (size_t i = 0; i < sqls.size(); ++i) {
          const size_t q = (i + c) % sqls.size();
          auto result = client->Query(sqls[q]);
          THEMIS_CHECK(result.ok())
              << sqls[q] << ": " << result.status().ToString();
          CheckIdentical(*result, expected[q], sqls[q]);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return static_cast<double>(sqls.size() * rounds * num_clients) /
         timer.Seconds();
}

int Run(size_t rounds, bool strict, const std::string& json_path) {
  PrintHeader("Serving micro-bench",
              "closed-loop multi-client TCP serving vs in-process loop");
  BenchScale scale;
  DatasetSetup flights = MakeFlights(scale);
  DatasetSetup imdb = MakeImdb(scale);
  aggregate::AggregateSet flights_aggs =
      MakePaperAggregates(flights.population, flights.covered_attrs, 5, 4);
  aggregate::AggregateSet imdb_aggs =
      MakePaperAggregates(imdb.population, imdb.covered_attrs, 5, 4);

  // Strictly interleaved cross-relation workload.
  const std::vector<std::string> flights_sqls =
      MakeRelationWorkload(flights, "flights", 20);
  const std::vector<std::string> imdb_sqls =
      MakeRelationWorkload(imdb, "imdb", 20);
  std::vector<std::string> sqls;
  for (size_t i = 0; sqls.size() < 120; ++i) {
    sqls.push_back(flights_sqls[i % flights_sqls.size()]);
    sqls.push_back(imdb_sqls[i % imdb_sqls.size()]);
  }

  std::vector<size_t> pool_sizes = {1, 2, 0};  // 0 = hardware
  double hw_single_qps = 0;
  double hw_multi_qps = 0;
  for (const size_t pool_size : pool_sizes) {
    Timer build_timer;
    core::ThemisDb db = BuildCombinedDb(flights, imdb, flights_aggs,
                                        imdb_aggs, pool_size);
    std::printf("  pool=%s: built 2 relations in %.2fs\n",
                pool_size == 0 ? "hw" : std::to_string(pool_size).c_str(),
                build_timer.Seconds());

    // The sequential in-process baseline — also the bitwise oracle.
    std::vector<sql::QueryResult> expected;
    Timer loop_timer;
    for (const std::string& sql : sqls) {
      auto result = db.Query(sql);
      THEMIS_CHECK_OK(result.status());
      expected.push_back(std::move(*result));
    }
    const double loop_qps =
        static_cast<double>(sqls.size()) / loop_timer.Seconds();

    server::QueryServer server(&db.catalog());
    THEMIS_CHECK_OK(server.Start());
    for (const size_t num_clients : {size_t{1}, size_t{4}}) {
      const double qps =
          RunClients(server.port(), sqls, expected, num_clients, rounds);
      std::printf(
          "  pool=%-2s clients=%zu: %8.0f q/s served (bitwise ok; "
          "in-process loop %8.0f q/s)\n",
          pool_size == 0 ? "hw" : std::to_string(pool_size).c_str(),
          num_clients, qps, loop_qps);
      if (pool_size == 0 && num_clients == 1) hw_single_qps = qps;
      if (pool_size == 0 && num_clients == 4) hw_multi_qps = qps;
    }
    auto stats_client = server::Client::Connect(server.port());
    THEMIS_CHECK(stats_client.ok());
    auto stats = stats_client->Stats();
    THEMIS_CHECK(stats.ok()) << stats.status().ToString();
    std::printf(
        "  pool=%-2s stats: served_ok=%zu rejected=%zu "
        "flights result-memo hit-rate %.2f\n",
        pool_size == 0 ? "hw" : std::to_string(pool_size).c_str(),
        stats->server.served_ok, stats->server.rejected_overload,
        stats->relations.at("flights").result_memo.HitRate());
    server.Stop();
  }

  const double speedup =
      hw_single_qps > 0 ? hw_multi_qps / hw_single_qps : 0;
  std::printf("  4 clients vs 1 on the hw pool: %.2fx %s\n", speedup,
              speedup >= 1.3
                  ? "(>= 1.3x: concurrent serving win demonstrated)"
                  : "(below the 1.3x bar)");

  if (!json_path.empty()) {
    server::JsonValue root = server::JsonValue::Object();
    root.Set("bench", server::JsonValue::String("serving"));
    root.Set("rounds",
             server::JsonValue::Number(static_cast<double>(rounds)));
    root.Set("simd_backend",
             server::JsonValue::String(server::HostStatsNow().simd_backend));
    root.Set("hardware_concurrency",
             server::JsonValue::Number(static_cast<double>(
                 std::thread::hardware_concurrency())));
    root.Set("hw_pool_single_client_qps",
             server::JsonValue::Number(hw_single_qps));
    root.Set("hw_pool_four_client_qps",
             server::JsonValue::Number(hw_multi_qps));
    // The gate is the ratio, not the absolute q/s, so the gate survives
    // runner speed changes; tools/check_bench.py compares it across runs.
    server::JsonValue gate = server::JsonValue::Object();
    gate.Set("multi_client_speedup", server::JsonValue::Number(speedup));
    root.Set("gate", std::move(gate));
    std::ofstream out(json_path);
    THEMIS_CHECK(out.good()) << json_path;
    out << root.Dump() << "\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return (strict && speedup < 1.3) ? 1 : 0;
}

/// Both halves of a connection live in this process (client fd + server
/// session fd), so a 1k-connection sweep needs ~2N descriptors: raise
/// the soft RLIMIT_NOFILE toward the hard cap before opening the fleet.
void RaiseFdLimit(size_t needed) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  const rlim_t want = static_cast<rlim_t>(needed);
  if (limit.rlim_cur >= want) return;
  rlimit raised = limit;
  raised.rlim_cur = limit.rlim_max == RLIM_INFINITY
                        ? want
                        : std::min<rlim_t>(want, limit.rlim_max);
  ::setrlimit(RLIMIT_NOFILE, &raised);
}

double PercentileMs(const std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(index, sorted_ms.size() - 1)];
}

/// The open-loop mode: `connections` idle sessions parked on the epoll
/// loops while kActiveClients closed-loop clients stream the workload.
/// Every served answer is bitwise-checked, and so is a sample of the
/// idle fleet after the storm — an idle epoll session must answer
/// exactly like a fresh one.
int OpenLoop(size_t connections, size_t rounds, const std::string& json_path,
             const std::string& metrics_out) {
  constexpr size_t kActiveClients = 64;
  PrintHeader("Serving open-loop bench",
              "idle-connection fleet + active clients on the epoll core");
  RaiseFdLimit(2 * connections + 4 * kActiveClients + 512);

  BenchScale scale;
  DatasetSetup flights = MakeFlights(scale);
  aggregate::AggregateSet aggs =
      MakePaperAggregates(flights.population, flights.covered_attrs, 5, 4);
  core::ThemisOptions options = BenchOptions();
  core::ThemisDb db(options);
  THEMIS_CHECK_OK(
      db.InsertSample("flights", flights.samples.at("Corners").Clone()));
  for (const auto& spec : aggs.specs()) {
    THEMIS_CHECK_OK(db.InsertAggregate("flights", spec));
  }
  THEMIS_CHECK_OK(db.Build());

  const std::vector<std::string> sqls =
      MakeRelationWorkload(flights, "flights", 20);
  std::vector<sql::QueryResult> expected;
  for (const std::string& sql : sqls) {
    auto result = db.Query(sql);
    THEMIS_CHECK_OK(result.status());
    expected.push_back(std::move(*result));
  }

  server::QueryServer server(&db.catalog());
  THEMIS_CHECK_OK(server.Start());
  std::printf("  server up on 127.0.0.1:%u, io_threads=%zu\n", server.port(),
              server.io_threads());

  // Park the idle fleet. Each connection costs the server one epoll
  // registration — no thread, no admission slot.
  std::vector<server::Client> idle;
  idle.reserve(connections);
  for (size_t i = 0; i < connections; ++i) {
    auto client = server::Client::Connect(server.port());
    THEMIS_CHECK(client.ok())
        << "connection " << i << ": " << client.status().ToString();
    idle.push_back(std::move(*client));
  }
  {
    auto stats = server::Client::Connect(server.port());
    THEMIS_CHECK(stats.ok());
    auto snapshot = stats->Stats();
    THEMIS_CHECK(snapshot.ok());
    THEMIS_CHECK(snapshot->server.active_connections >= connections)
        << snapshot->server.active_connections;
    std::printf("  idle fleet parked: %zu open sessions on %zu io threads\n",
                snapshot->server.active_connections,
                snapshot->server.io_threads);
  }

  // The active storm: closed-loop clients with per-request latency
  // capture, all answers bitwise-checked against the in-process oracle.
  std::vector<std::vector<double>> latencies(kActiveClients);
  Timer timer;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kActiveClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = server::Client::Connect(server.port());
      THEMIS_CHECK(client.ok()) << client.status().ToString();
      latencies[c].reserve(rounds * sqls.size());
      for (size_t round = 0; round < rounds; ++round) {
        for (size_t i = 0; i < sqls.size(); ++i) {
          const size_t q = (i + c) % sqls.size();
          Timer request_timer;
          auto result = client->Query(sqls[q]);
          latencies[c].push_back(request_timer.Seconds() * 1e3);
          THEMIS_CHECK(result.ok())
              << sqls[q] << ": " << result.status().ToString();
          CheckIdentical(*result, expected[q], sqls[q]);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = timer.Seconds();
  const double qps =
      static_cast<double>(kActiveClients * rounds * sqls.size()) / elapsed;

  std::vector<double> merged;
  for (const std::vector<double>& per_client : latencies) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  std::sort(merged.begin(), merged.end());
  const double p50_ms = PercentileMs(merged, 0.50);
  const double p99_ms = PercentileMs(merged, 0.99);
  std::printf(
      "  %zu idle + %zu active: %8.0f q/s, p50 %.3f ms, p99 %.3f ms "
      "(%zu requests, all bitwise ok)\n",
      connections, kActiveClients, qps, p50_ms, p99_ms, merged.size());

  // The idle fleet survived the storm: a sample of parked sessions must
  // answer bitwise-identically to the oracle.
  for (size_t i = 0; i < connections; i += std::max<size_t>(1, connections / 8)) {
    const size_t q = i % sqls.size();
    auto result = idle[i].Query(sqls[q]);
    THEMIS_CHECK(result.ok())
        << "idle " << i << ": " << result.status().ToString();
    CheckIdentical(*result, expected[q], "idle " + sqls[q]);
  }
  std::printf("  idle sessions answer after the storm: bitwise ok\n");

  // Server-side view of the same storm: the always-on request-latency
  // histogram must have recorded exactly one sample per served request
  // (the METRICS count identity), and its percentiles sit alongside the
  // client-observed ones — the gap between the two is wire + client
  // overhead.
  double server_p50_ms = 0;
  double server_p99_ms = 0;
  {
    auto scraper = server::Client::Connect(server.port());
    THEMIS_CHECK(scraper.ok());
    auto stats = scraper->Stats();
    THEMIS_CHECK(stats.ok()) << stats.status().ToString();
    auto text = scraper->Metrics();
    THEMIS_CHECK(text.ok()) << text.status().ToString();
    const double hist_count =
        MetricValue(*text, "themis_request_latency_seconds_count");
    const double served = static_cast<double>(stats->server.served_ok +
                                              stats->server.served_error);
    THEMIS_CHECK(hist_count == served)
        << "histogram count " << hist_count << " != served " << served;
    const obs::Histogram::Snapshot snap =
        server.metrics().request_latency.TakeSnapshot();
    server_p50_ms = static_cast<double>(snap.Quantile(0.50)) / 1e6;
    server_p99_ms = static_cast<double>(snap.Quantile(0.99)) / 1e6;
    std::printf(
        "  server-side histogram: p50 %.3f ms, p99 %.3f ms "
        "(count %.0f == served_ok + served_error)\n",
        server_p50_ms, server_p99_ms, hist_count);
    WriteMetricsOut(metrics_out, *text);
  }

  if (!json_path.empty()) {
    server::JsonValue root = server::JsonValue::Object();
    root.Set("bench", server::JsonValue::String("serving_open_loop"));
    root.Set("connections",
             server::JsonValue::Number(static_cast<double>(connections)));
    root.Set("active_clients",
             server::JsonValue::Number(static_cast<double>(kActiveClients)));
    root.Set("rounds",
             server::JsonValue::Number(static_cast<double>(rounds)));
    root.Set("io_threads", server::JsonValue::Number(
                               static_cast<double>(server.io_threads())));
    root.Set("simd_backend",
             server::JsonValue::String(server::HostStatsNow().simd_backend));
    root.Set("hardware_concurrency",
             server::JsonValue::Number(static_cast<double>(
                 std::thread::hardware_concurrency())));
    // The _ms suffix marks lower-is-better for tools/check_bench.py;
    // latency gates get a deliberately loose tolerance there because
    // absolute milliseconds vary across runners far more than ratios.
    server::JsonValue gate = server::JsonValue::Object();
    gate.Set("open_loop_qps", server::JsonValue::Number(qps));
    gate.Set("open_loop_p50_ms", server::JsonValue::Number(p50_ms));
    gate.Set("open_loop_p99_ms", server::JsonValue::Number(p99_ms));
    // Informational, deliberately outside the gate: server-side
    // percentiles come from the METRICS histogram (bucket upper bounds,
    // not exact order statistics), so they are not comparable across a
    // bucket-layout change the way the client-observed gates are.
    root.Set("server_p50_ms", server::JsonValue::Number(server_p50_ms));
    root.Set("server_p99_ms", server::JsonValue::Number(server_p99_ms));
    root.Set("gate", std::move(gate));
    std::ofstream out(json_path);
    THEMIS_CHECK(out.good()) << json_path;
    out << root.Dump() << "\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }

  idle.clear();
  server.Stop();
  THEMIS_CHECK(!server.running());
  std::printf("  graceful shutdown with the fleet connected: ok\n");
  return 0;
}

/// Reusable cyclic barrier: every client arrives, then the step fires.
/// Keeps the herd aligned — without it closed-loop clients drift apart
/// within a few requests and the duplicates stop overlapping in time.
class StepBarrier {
 public:
  explicit StepBarrier(size_t parties) : parties_(parties) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t arrived_in = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != arrived_in; });
    }
  }

 private:
  const size_t parties_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t waiting_ = 0;
  uint64_t generation_ = 0;
};

/// The duplicate-heavy mode the coalescing layer exists for: kClients
/// clients stream the SAME Zipf-skewed sequence over a fixed GROUP BY
/// query set in lockstep (a barrier between steps) — the aligned
/// thundering herd of a real interactive fleet, where a dashboard tick
/// makes every user fire the head queries within milliseconds of each
/// other. The identical workload runs against two server configurations:
/// the per-request-submission baseline (adaptive micro-batching and
/// single-flight coalescing both disabled — exactly the pre-coalescing
/// serving path) and the coalesced server (both enabled). On a cold
/// query the baseline's herd all miss the result memo and execute the
/// plan kClients times; the coalesced server executes it once and
/// attaches the rest as followers. The memo is cleared before every
/// round in both runs so each herd arrives cold, every answer is
/// bitwise-checked against the in-process oracle, and the gate is the
/// QPS ratio — which measures avoided duplicate work, so it holds on any
/// core count.
int Dupes(size_t rounds, bool smoke, const std::string& json_path) {
  constexpr size_t kClients = 16;
  constexpr double kZipfSkew = 1.1;
  PrintHeader("Serving duplicate-heavy bench",
              "Zipf thundering herd: coalesced vs per-request submission");
  BenchScale scale;
  // A cold GROUP BY must cost real work for the measurement to be about
  // redundant execution rather than wire overhead: at the default scale a
  // plan finishes inside one scheduler quantum, the herd serializes, and
  // both configurations degenerate to memo hits.
  scale.flights_rows *= 8;
  DatasetSetup flights = MakeFlights(scale);
  aggregate::AggregateSet aggs =
      MakePaperAggregates(flights.population, flights.covered_attrs, 5, 4);
  core::ThemisOptions options = BenchOptions();
  // One pool thread per herd member: the baseline's duplicate requests
  // must be able to START concurrently (all missing the cold memo) for
  // the run to measure the redundant work coalescing avoids — with a
  // narrow pool the queue itself serializes the herd and the memo hides
  // the problem. The same width serves the coalesced run, where all but
  // one of those threads park as followers. Also guarantees the >= 2
  // threads the deterministic probe below needs on a one-CPU runner.
  options.num_threads =
      std::max<size_t>(kClients, std::thread::hardware_concurrency());
  core::ThemisDb db(options);
  THEMIS_CHECK_OK(
      db.InsertSample("flights", flights.samples.at("Corners").Clone()));
  for (const auto& spec : aggs.specs()) {
    THEMIS_CHECK_OK(db.InsertAggregate("flights", spec));
  }
  THEMIS_CHECK_OK(db.Build());

  // GROUP BY-only query set (num_points = 0): expensive, memoizable —
  // the traffic shape where a herd racing past a cold memo hurts most.
  const std::vector<std::string> sqls =
      MakeRelationWorkload(flights, "flights", 0);
  std::vector<sql::QueryResult> expected;
  for (const std::string& sql : sqls) {
    auto result = db.Query(sql);
    THEMIS_CHECK_OK(result.status());
    expected.push_back(std::move(*result));
  }

  // One shared Zipf-skewed request sequence: every client streams the
  // same draws in the same order, so duplicates align in time. One pass
  // over the workload per round — the memo (shared by both runs) is
  // cleared per round, and coalescing only wins on a query's *first*
  // herd step, so a longer sequence would just dilute the cold fraction
  // with warm-memo steps that measure identically either way.
  const size_t sequence_len = sqls.size();
  std::vector<size_t> sequence;
  sequence.reserve(sequence_len);
  Rng rng(2026);
  for (size_t i = 0; i < sequence_len; ++i) {
    sequence.push_back(static_cast<size_t>(
        rng.Zipf(static_cast<int64_t>(sqls.size()), kZipfSkew)));
  }

  const core::HybridEvaluator* evaluator = db.catalog().evaluator("flights");
  THEMIS_CHECK(evaluator != nullptr);

  server::ServerCounters coalesced_counters;
  core::ResultMemoStats coalesced_memo;
  const auto run = [&](bool coalesced) -> double {
    db.catalog().SetCoalescingEnabled(coalesced);
    server::QueryServer::Options server_options;
    server_options.enable_micro_batch = coalesced;
    // The response byte cache rides with the coalesced configuration:
    // round 1 of a query is a miss (the herd coalesces into one flight,
    // whose encoded bytes are admitted), and every later round is served
    // from cached bytes on the I/O thread — no admission slot, no pool
    // handoff, no re-encode. The per-round ClearResultMemo below does
    // not touch the byte cache, exactly as a production dashboard's
    // repeat ticks would find it warm.
    server_options.enable_response_cache = coalesced;
    server::QueryServer server(&db.catalog(), server_options);
    THEMIS_CHECK_OK(server.Start());
    double seconds = 0;
    for (size_t round = 0; round < rounds; ++round) {
      evaluator->ClearResultMemo();  // every herd arrives cold
      StepBarrier barrier(kClients);
      Timer timer;
      std::vector<std::thread> threads;
      for (size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&] {
          auto client = server::Client::Connect(server.port());
          THEMIS_CHECK(client.ok()) << client.status().ToString();
          for (const size_t q : sequence) {
            barrier.ArriveAndWait();  // the herd fires together
            auto result = client->Query(sqls[q]);
            THEMIS_CHECK(result.ok())
                << sqls[q] << ": " << result.status().ToString();
            CheckIdentical(*result, expected[q], sqls[q]);
          }
        });
      }
      for (std::thread& t : threads) t.join();
      seconds += timer.Seconds();
    }
    if (coalesced) {
      auto stats_client = server::Client::Connect(server.port());
      THEMIS_CHECK(stats_client.ok());
      auto stats = stats_client->Stats();
      THEMIS_CHECK(stats.ok()) << stats.status().ToString();
      coalesced_counters = stats->server;
      coalesced_memo = stats->relations.at("flights").result_memo;
    }
    server.Stop();
    return static_cast<double>(kClients * rounds * sequence.size()) /
           seconds;
  };

  const double baseline_qps = run(false);
  std::printf("  baseline  (per-request submission): %8.0f q/s\n",
              baseline_qps);
  const double coalesced_qps = run(true);
  std::printf(
      "  coalesced (single-flight + micro-batch + byte cache): %8.0f q/s "
      "(coalesced_hits=%zu flights=%zu batches_formed=%zu "
      "batched_requests=%zu response_cache_hits=%zu "
      "responses_encoded=%zu)\n",
      coalesced_qps, coalesced_memo.coalesced_hits,
      coalesced_memo.coalesced_flights, coalesced_counters.batches_formed,
      coalesced_counters.batched_requests,
      coalesced_counters.response_cache_hits,
      coalesced_counters.responses_encoded);
  const double speedup =
      baseline_qps > 0 ? coalesced_qps / baseline_qps : 0;
  std::printf("  duplicate-heavy speedup: %.2fx %s\n", speedup,
              speedup >= 2.0 ? "(>= 2x: coalescing win demonstrated)"
                             : "(below the 2x bar)");

  // Deterministic coalescing probe — the CI assertion that a duplicate
  // burst really attaches followers, independent of scheduler timing:
  // park the first uncached execution until a duplicate has joined its
  // flight, then release and bitwise-check both answers.
  {
    db.catalog().SetCoalescingEnabled(true);
    evaluator->ClearResultMemo();
    const size_t hits_before = evaluator->result_memo_stats().coalesced_hits;
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    auto first = std::make_shared<std::atomic<bool>>(true);
    evaluator->set_uncached_execute_hook([released, first] {
      if (first->exchange(false)) released.wait();
    });
    server::QueryServer server(&db.catalog());
    THEMIS_CHECK_OK(server.Start());
    auto leader = server::Client::Connect(server.port());
    auto follower = server::Client::Connect(server.port());
    THEMIS_CHECK(leader.ok() && follower.ok());
    const size_t q = sequence.front();
    THEMIS_CHECK_OK(leader->Send(server::EncodeRequest(
        [&] { server::WireRequest r; r.sql = sqls[q]; return r; }())));
    THEMIS_CHECK_OK(follower->Send(server::EncodeRequest(
        [&] { server::WireRequest r; r.sql = sqls[q]; return r; }())));
    while (evaluator->result_memo_stats().coalesced_hits <= hits_before) {
      std::this_thread::yield();
    }
    release.set_value();
    for (auto* client : {&*leader, &*follower}) {
      auto line = client->Receive();
      THEMIS_CHECK(line.ok()) << line.status().ToString();
      auto result = server::DecodeResultResponse(*line);
      THEMIS_CHECK(result.ok()) << *line;
      CheckIdentical(*result, expected[q], sqls[q]);
    }
    evaluator->set_uncached_execute_hook(nullptr);
    server.Stop();
    const size_t probe_hits =
        evaluator->result_memo_stats().coalesced_hits - hits_before;
    THEMIS_CHECK(probe_hits >= 1) << probe_hits;
    THEMIS_CHECK(coalesced_memo.coalesced_hits + probe_hits > 0);
    std::printf(
        "  deterministic duplicate burst: leader executed once, "
        "%zu follower(s) coalesced, answers bitwise ok\n",
        probe_hits);
  }

  if (!json_path.empty()) {
    server::JsonValue root = server::JsonValue::Object();
    root.Set("bench", server::JsonValue::String("serving_dupes"));
    root.Set("rounds",
             server::JsonValue::Number(static_cast<double>(rounds)));
    root.Set("clients",
             server::JsonValue::Number(static_cast<double>(kClients)));
    root.Set("zipf_skew", server::JsonValue::Number(kZipfSkew));
    root.Set("sequence_len", server::JsonValue::Number(
                                 static_cast<double>(sequence.size())));
    root.Set("unique_queries",
             server::JsonValue::Number(static_cast<double>(sqls.size())));
    root.Set("baseline_qps", server::JsonValue::Number(baseline_qps));
    root.Set("coalesced_qps", server::JsonValue::Number(coalesced_qps));
    root.Set("coalesced_hits",
             server::JsonValue::Number(
                 static_cast<double>(coalesced_memo.coalesced_hits)));
    root.Set("batches_formed",
             server::JsonValue::Number(static_cast<double>(
                 coalesced_counters.batches_formed)));
    root.Set("batched_requests",
             server::JsonValue::Number(static_cast<double>(
                 coalesced_counters.batched_requests)));
    root.Set("response_cache_hits",
             server::JsonValue::Number(static_cast<double>(
                 coalesced_counters.response_cache_hits)));
    root.Set("responses_encoded",
             server::JsonValue::Number(static_cast<double>(
                 coalesced_counters.responses_encoded)));
    root.Set("hardware_concurrency",
             server::JsonValue::Number(static_cast<double>(
                 std::thread::hardware_concurrency())));
    root.Set("simd_backend",
             server::JsonValue::String(server::HostStatsNow().simd_backend));
    // The gate is the ratio — avoided duplicate work, not parallelism —
    // so it transfers across runner core counts and speeds.
    server::JsonValue gate = server::JsonValue::Object();
    gate.Set("dupes_speedup", server::JsonValue::Number(speedup));
    root.Set("gate", std::move(gate));
    std::ofstream out(json_path);
    THEMIS_CHECK(out.good()) << json_path;
    out << root.Dump() << "\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return smoke ? 0 : (speedup >= 2.0 ? 0 : 1);
}

/// The CI smoke: point + GROUP BY + repeat (a byte-cache hit when the
/// cache is on) + STATS + deterministic overload + METRICS (with the
/// histogram-count identity checked) + graceful shutdown against a
/// one-relation server with tracing fully armed. Also micro-checks the
/// EncodeResponse pre-sizing estimate against the actual payload and
/// writes both to the --json snapshot. `no_response_cache` runs the
/// whole sequence with the response byte cache disabled — CI runs both
/// lanes and validates each exposition with tools/check_metrics.py.
int Smoke(const std::string& metrics_out, const std::string& json_path,
          bool no_response_cache) {
  PrintHeader("Serving smoke", "start, query, stats, overload, shutdown");
  BenchScale scale;
  DatasetSetup flights = MakeFlights(scale);
  aggregate::AggregateSet aggs =
      MakePaperAggregates(flights.population, flights.covered_attrs, 5, 4);
  core::ThemisOptions options = BenchOptions();
  core::ThemisDb db(options);
  THEMIS_CHECK_OK(
      db.InsertSample("flights", flights.samples.at("Corners").Clone()));
  for (const auto& spec : aggs.specs()) {
    THEMIS_CHECK_OK(db.InsertAggregate("flights", spec));
  }
  THEMIS_CHECK_OK(db.Build());

  // One-shot latch: the first admitted request blocks until released so
  // the overload rejection is deterministic; later requests pass through.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  server::QueryServer::Options server_options;
  server_options.max_inflight = 1;
  server_options.request_hook = [released] { released.wait(); };
  // Trace every request so the smoke exercises the whole observability
  // path: spans recorded per stage, stage histograms populated, and the
  // slow-query log filled — all of which METRICS and STATS then expose.
  server_options.trace_sample_n = 1;
  server_options.slow_query_log_k = 8;
  if (no_response_cache) server_options.enable_response_cache = false;
  server::QueryServer server(&db.catalog(), server_options);
  THEMIS_CHECK_OK(server.Start());
  std::printf("  server up on 127.0.0.1:%u (max_inflight=1, "
              "response cache %s)\n",
              server.port(), no_response_cache ? "off" : "on");

  const std::string point =
      "SELECT COUNT(*) FROM flights WHERE " +
      flights.population.schema()->domain(0).name() + " = '" +
      flights.population.schema()->domain(0).Label(0) + "'";
  const std::string group_by =
      "SELECT " + flights.population.schema()->domain(0).name() +
      ", COUNT(*) FROM flights GROUP BY " +
      flights.population.schema()->domain(0).name();

  auto holder = server::Client::Connect(server.port());
  THEMIS_CHECK(holder.ok());
  THEMIS_CHECK_OK(holder->Send("{\"sql\": \"" + point + "\"}"));
  auto observer = server::Client::Connect(server.port());
  THEMIS_CHECK(observer.ok());
  for (;;) {
    auto stats = observer->Stats();
    THEMIS_CHECK(stats.ok()) << stats.status().ToString();
    if (stats->server.inflight >= 1) break;
    std::this_thread::yield();
  }
  auto rejected = observer->Query(group_by);
  THEMIS_CHECK(rejected.status().code() == StatusCode::kResourceExhausted)
      << rejected.status().ToString();
  std::printf("  overload while slot held: ResourceExhausted (as designed)\n");

  release.set_value();
  auto held = holder->Receive();
  THEMIS_CHECK(held.ok()) << held.status().ToString();
  auto point_result = server::DecodeResultResponse(*held);
  THEMIS_CHECK(point_result.ok()) << *held;
  CheckIdentical(*point_result, *db.Query(point), point);
  std::printf("  point query over the wire: bitwise ok\n");

  auto group_result = observer->Query(group_by);
  THEMIS_CHECK(group_result.ok()) << group_result.status().ToString();
  CheckIdentical(*group_result, *db.Query(group_by), group_by);
  std::printf("  GROUP BY over the wire: bitwise ok\n");

  // Repeat the GROUP BY: with the byte cache on this is an inline hit —
  // served from cached bytes on the I/O thread, no re-encode, yet still
  // counted in served_ok and the latency histogram (the count identity
  // below covers it); with the cache off it executes again. Either way
  // the answer must be bitwise identical.
  auto repeat_result = observer->Query(group_by);
  THEMIS_CHECK(repeat_result.ok()) << repeat_result.status().ToString();
  CheckIdentical(*repeat_result, *group_result, "repeat " + group_by);
  std::printf("  repeated GROUP BY: bitwise ok\n");

  // The EncodeResponse pre-sizing micro-check: the estimate that seeds
  // the reserve must cover the actual GROUP BY payload without being
  // wildly oversized. Loose bounds — it is a heuristic, not a contract.
  const std::string encoded = server::EncodeResultResponse(*group_result);
  const size_t estimate = server::EstimateResultResponseBytes(*group_result);
  const double estimate_ratio =
      static_cast<double>(estimate) / static_cast<double>(encoded.size());
  THEMIS_CHECK(estimate_ratio >= 0.5 && estimate_ratio <= 8.0)
      << "estimate " << estimate << " vs actual " << encoded.size();
  std::printf("  encode size estimate: %zu vs actual %zu (ratio %.2f)\n",
              estimate, encoded.size(), estimate_ratio);

  auto stats = observer->Stats();
  THEMIS_CHECK(stats.ok());
  THEMIS_CHECK(stats->server.served_ok == 3) << stats->server.served_ok;
  THEMIS_CHECK(stats->server.rejected_overload == 1);
  THEMIS_CHECK(stats->relations.at("flights").built);
  if (no_response_cache) {
    THEMIS_CHECK(stats->server.response_cache_hits == 0);
    THEMIS_CHECK(stats->server.response_cache_capacity == 0);
    THEMIS_CHECK(stats->server.responses_encoded == 3)
        << stats->server.responses_encoded;
  } else {
    THEMIS_CHECK(stats->server.response_cache_hits == 1)
        << stats->server.response_cache_hits;
    THEMIS_CHECK(stats->server.responses_encoded == 2)
        << stats->server.responses_encoded;
  }
  std::printf(
      "  STATS: served_ok=3 rejected_overload=1 flights built "
      "(response_cache_hits=%zu responses_encoded=%zu)\n",
      stats->server.response_cache_hits, stats->server.responses_encoded);
  // Inline byte-cache hits skip tracing (they never reach the pool), so
  // the cache-on lane logs one fewer traced request.
  const size_t expected_traced = no_response_cache ? 3 : 2;
  THEMIS_CHECK(stats->slow_queries.size() == expected_traced)
      << stats->slow_queries.size();
  std::printf("  slow-query log: %zu traced requests captured\n",
              stats->slow_queries.size());

  // METRICS over the wire, with the serving invariant checked here too:
  // the always-on request-latency histogram records exactly one sample
  // per served request, so its count must equal served_ok + served_error
  // (overload rejections and inline verbs are excluded on both sides).
  auto metrics_text = observer->Metrics();
  THEMIS_CHECK(metrics_text.ok()) << metrics_text.status().ToString();
  const double hist_count =
      MetricValue(*metrics_text, "themis_request_latency_seconds_count");
  const double served = static_cast<double>(stats->server.served_ok +
                                            stats->server.served_error);
  THEMIS_CHECK(hist_count == served)
      << "histogram count " << hist_count << " != served " << served;
  std::printf(
      "  METRICS: request-latency histogram count %.0f == "
      "served_ok + served_error\n",
      hist_count);
  WriteMetricsOut(metrics_out, *metrics_text);

  if (!json_path.empty()) {
    server::JsonValue root = server::JsonValue::Object();
    root.Set("bench", server::JsonValue::String("serving_smoke"));
    root.Set("response_cache",
             server::JsonValue::Bool(!no_response_cache));
    root.Set("hardware_concurrency",
             server::JsonValue::Number(static_cast<double>(
                 std::thread::hardware_concurrency())));
    root.Set("simd_backend",
             server::JsonValue::String(server::HostStatsNow().simd_backend));
    root.Set("encode_estimate_bytes",
             server::JsonValue::Number(static_cast<double>(estimate)));
    root.Set("encode_actual_bytes",
             server::JsonValue::Number(static_cast<double>(encoded.size())));
    root.Set("encode_estimate_ratio",
             server::JsonValue::Number(estimate_ratio));
    root.Set("response_cache_hits",
             server::JsonValue::Number(static_cast<double>(
                 stats->server.response_cache_hits)));
    root.Set("responses_encoded",
             server::JsonValue::Number(static_cast<double>(
                 stats->server.responses_encoded)));
    std::ofstream out(json_path);
    THEMIS_CHECK(out.good()) << json_path;
    out << root.Dump() << "\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }

  server.Stop();
  THEMIS_CHECK(!server.running());
  std::printf("  graceful shutdown: ok\n");
  return 0;
}

}  // namespace
}  // namespace themis::bench

int main(int argc, char** argv) {
  size_t rounds = 2;
  size_t connections = 0;
  bool strict = false;
  bool smoke = false;
  bool dupes = false;
  bool no_response_cache = false;
  std::string json_path;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--dupes") == 0) {
      dupes = true;
    } else if (std::strcmp(argv[i], "--no-response-cache") == 0) {
      no_response_cache = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      connections = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      rounds = static_cast<size_t>(std::strtoul(argv[i], nullptr, 10));
    }
  }
  if (rounds == 0) rounds = 1;
  if (dupes) {
    return themis::bench::Dupes(smoke ? 1 : rounds, smoke, json_path);
  }
  if (connections > 0) {
    // Latency percentiles gate the committed snapshot, and check_bench
    // refuses single-round *_ms measurements — so even the CI smoke runs
    // two rounds.
    return themis::bench::OpenLoop(connections, smoke ? 2 : rounds,
                                   json_path, metrics_out);
  }
  return smoke ? themis::bench::Smoke(metrics_out, json_path,
                                      no_response_cache)
               : themis::bench::Run(rounds, strict, json_path);
}
