// Measures the cross-query reuse win of the memoizing inference engine: a
// repeated mixed point-query workload answered by exact BN inference with
// the cache disabled vs enabled, on the same evaluator and model. Verifies
// the two configurations produce bitwise-identical answers (the engine
// computes marginals over the canonical target order in both paths) and
// reports the speedup; the acceptance bar is >= 2x on repeated traffic.
//
//   ./bench_inference_cache [rounds] [--strict]
//
// Answer divergence always aborts. --strict additionally turns the 2x
// speedup bar into the exit code; without it timing stays informational
// (wall-clock gates flake on noisy shared runners).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"

#include "bn/inference_engine.h"
#include "core/evaluator.h"
#include "core/model.h"
#include "util/logging.h"
#include "util/timer.h"

namespace themis::bench {
namespace {

std::vector<double> RunWorkload(const core::HybridEvaluator& evaluator,
                                const std::vector<workload::PointQuery>& qs,
                                size_t rounds) {
  std::vector<double> answers;
  answers.reserve(qs.size() * rounds);
  for (size_t r = 0; r < rounds; ++r) {
    for (const auto& q : qs) {
      auto estimate =
          evaluator.PointEstimate(q.attrs, q.values, core::AnswerMode::kBnOnly);
      answers.push_back(estimate.ok() ? *estimate : -1.0);
    }
  }
  return answers;
}

int Run(size_t rounds, bool strict) {
  PrintHeader("Reuse micro-bench",
              "repeated BN point queries, inference cache off vs on");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  const double n = static_cast<double>(setup.population.num_rows());
  aggregate::AggregateSet aggregates =
      MakePaperAggregates(setup.population, setup.covered_attrs, 5, 4);

  core::ThemisOptions options = BenchOptions();
  options.population_size = n;
  auto model = core::ThemisModel::Build(setup.samples.at("Corners").Clone(),
                                        aggregates, options);
  THEMIS_CHECK(model.ok()) << model.status().ToString();
  core::HybridEvaluator evaluator(&*model);
  bn::InferenceEngine* engine = evaluator.mutable_inference_engine();
  THEMIS_CHECK(engine != nullptr);

  Rng rng(171);
  const std::vector<workload::PointQuery> queries =
      workload::MakeMixedPointQueries(setup.population, 2, 3,
                                      workload::HitterClass::kRandom, 100,
                                      rng);
  std::printf("  %zu distinct queries x %zu rounds\n", queries.size(),
              rounds);

  engine->set_cache_enabled(false);
  engine->ClearCache();
  Timer timer;
  const std::vector<double> cold = RunWorkload(evaluator, queries, rounds);
  const double seconds_off = timer.Seconds();

  engine->ClearCache();
  engine->set_cache_enabled(true);
  timer.Restart();
  const std::vector<double> warm = RunWorkload(evaluator, queries, rounds);
  const double seconds_on = timer.Seconds();
  const bn::InferenceCacheStats stats = engine->cache_stats();

  THEMIS_CHECK(cold.size() == warm.size());
  const bool identical =
      std::memcmp(cold.data(), warm.data(), cold.size() * sizeof(double)) ==
      0;
  THEMIS_CHECK(identical) << "cache on/off answers diverged";

  const double speedup = seconds_on > 0 ? seconds_off / seconds_on : 0.0;
  std::printf("  cache off: %8.1f ms\n", seconds_off * 1e3);
  std::printf("  cache on:  %8.1f ms  (%zu hits / %zu misses, %.0f%% hit "
              "rate)\n",
              seconds_on * 1e3, stats.hits, stats.misses,
              100.0 * stats.HitRate());
  std::printf("  answers bitwise-identical: yes\n");
  std::printf("  speedup: %.1fx %s\n", speedup,
              speedup >= 2.0 ? "(>= 2x: reuse win demonstrated)"
                             : "(below the 2x bar)");
  return (strict && speedup < 2.0) ? 1 : 0;
}

}  // namespace
}  // namespace themis::bench

int main(int argc, char** argv) {
  size_t rounds = 5;
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      rounds = static_cast<size_t>(std::strtoul(argv[i], nullptr, 10));
    }
  }
  if (rounds == 0) rounds = 1;
  return themis::bench::Run(rounds, strict);
}
