// Reproduces Fig 7: Flights 1D aggregate sweep (orders A and B). Shape to reproduce: the biggest accuracy
// jump for IPF/BB/hybrid comes when the 1D aggregate over the attribute
// causing the sample's bias is added (Sec 6.5).
#include "knowledge_sweep.h"

int main() {
  using namespace themis::bench;
  PrintHeader("Fig 7", "Flights 1D aggregate sweep (orders A and B)");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  Run1dSweep(setup, {"SCorners", "June"}, scale, 71);
  return 0;
}
