// Reproduces Fig 13: the five BN learning variants (SS / SB / BS / AB /
// BB) on SCorners for heavy- and light-hitter queries as 2D aggregates are
// added on top of the 5 1D aggregates. Shape to reproduce: BB best
// overall; parameter source matters more than structure source (SB > BS);
// AB converges to BB as aggregates accumulate.
#include "common.h"

#include "bn/inference.h"
#include "bn/learn.h"
#include "stats/metrics.h"
#include "util/logging.h"

namespace themis::bench {
namespace {

/// BN-only point answering for a standalone network: n * Pr(values).
std::vector<double> BnErrors(const bn::BayesianNetwork& network, double n,
                             const std::vector<workload::PointQuery>& queries) {
  bn::VariableElimination ve(&network);
  std::vector<double> errors;
  errors.reserve(queries.size());
  for (const auto& query : queries) {
    bn::Evidence evidence;
    for (size_t i = 0; i < query.attrs.size(); ++i) {
      evidence[query.attrs[i]] = query.values[i];
    }
    auto p = ve.Probability(evidence);
    const double estimate = p.ok() ? n * *p : 0.0;
    errors.push_back(stats::PercentDifference(query.true_count, estimate));
  }
  return errors;
}

void Run() {
  PrintHeader("Fig 13", "BN variants SS/SB/BS/AB/BB on Flights SCorners");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  const double n = static_cast<double>(setup.population.num_rows());
  const data::Table& sample = setup.samples.at("SCorners");

  Rng rng(131);
  auto heavy = workload::MakeMixedPointQueries(
      setup.population, 2, 4, workload::HitterClass::kHeavy, scale.queries,
      rng);
  auto light = workload::MakeMixedPointQueries(
      setup.population, 2, 4, workload::HitterClass::kLight, scale.queries,
      rng);

  const std::vector<bn::BnVariant> variants = {
      bn::BnVariant::kSS, bn::BnVariant::kSB, bn::BnVariant::kBS,
      bn::BnVariant::kAB, bn::BnVariant::kBB};

  for (const auto& [klass, queries] :
       {std::pair{"heavy", &heavy}, std::pair{"light", &light}}) {
    std::printf("-- %s hitters (avg perc diff per variant) --\n", klass);
    std::printf("  #2D      SS      SB      BS      AB      BB\n");
    for (size_t b = 0; b <= 4; ++b) {
      aggregate::AggregateSet aggregates = MakePaperAggregates(
          setup.population, setup.covered_attrs, 5, b);
      std::printf("  %zu  ", b);
      for (bn::BnVariant variant : variants) {
        bn::BnLearnOptions options;
        options.variant = variant;
        auto network = bn::LearnBayesNet(sample.schema(), &sample,
                                         &aggregates, options);
        THEMIS_CHECK(network.ok()) << network.status().ToString();
        auto errors = BnErrors(*network, n, *queries);
        std::printf("  %6.1f", stats::Mean(errors));
      }
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
