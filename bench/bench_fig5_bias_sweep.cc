// Reproduces Fig 5: average percent difference of random point queries on
// the Corners sample as the bias decreases from 100% to 90% (at 100% the
// sample's support excludes all non-corner origins). Shape to reproduce:
// reweighting jumps in accuracy as soon as bias < 100%; hybrid mitigates
// the 100% case and tracks the best method elsewhere.
#include "common.h"

#include "util/logging.h"

namespace themis::bench {
namespace {

using workload::FlightsAttrs;

void Run() {
  PrintHeader("Fig 5", "Corners bias sweep 1.00 -> 0.90, 4 2D aggregates");
  BenchScale scale;
  DatasetSetup setup = MakeFlights(scale);
  aggregate::AggregateSet aggregates =
      MakePaperAggregates(setup.population, setup.covered_attrs, 5, 4);

  Rng rng(51);
  auto queries = workload::MakeMixedPointQueries(
      setup.population, 2, 5, workload::HitterClass::kRandom, scale.queries,
      rng);

  const workload::SelectionCriterion corners{
      FlightsAttrs::kOrigin, {"CA", "NY", "FL", "WA"}};
  std::printf("  bias     AQP     IPF      BB  Hybrid (avg perc diff)\n");
  for (double bias : {1.0, 0.98, 0.96, 0.94, 0.92, 0.90}) {
    Rng sample_rng(52);
    auto sample = workload::BiasedSample(setup.population, 0.1, bias,
                                         corners, sample_rng);
    THEMIS_CHECK(sample.ok());
    auto suite = workload::MethodSuite::Build(
        *sample, aggregates,
        static_cast<double>(setup.population.num_rows()), BenchOptions());
    THEMIS_CHECK(suite.ok()) << suite.status().ToString();
    std::printf("  %.2f", bias);
    for (const char* method : {"AQP", "IPF", "BB", "Hybrid"}) {
      auto errors = suite->Errors(method, queries);
      THEMIS_CHECK(errors.ok());
      std::printf("  %6.1f", stats::Mean(*errors));
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace themis::bench

int main() {
  themis::bench::Run();
  return 0;
}
