// The Sec 2 scenario end-to-end at realistic scale: a data scientist has a
// state-biased flights sample and the published per-state flight counts,
// and wants the number of short flights per state. Compares the four
// preparation strategies from the paper's Table 1: Raw (do nothing), AQP
// (uniform rescale), US State (per-state reweight) and Themis.
//
//   ./flights_debias
#include <cstdio>

#include "core/evaluator.h"
#include "core/model.h"
#include "workload/flights.h"
#include "workload/sampler.h"

using namespace themis;

int main() {
  // Synthetic US flights population (see DESIGN.md for how this stands in
  // for the BTS 2005 data) and a sample biased towards four major states.
  workload::FlightsConfig config;
  config.num_rows = 150000;
  data::Table population = workload::GenerateFlights(config);
  auto sample = workload::MakeFlightsSample(population, "SCorners", 0.1, 1);
  THEMIS_CHECK(sample.ok());

  // The published aggregate: flights per origin state.
  aggregate::AggregateSet aggregates(population.schema());
  aggregates.Add(aggregate::ComputeAggregate(
      population, {workload::FlightsAttrs::kOrigin}));

  core::ThemisOptions options;
  options.population_size = static_cast<double>(population.num_rows());

  // AQP: uniform reweighting only.
  options.reweight = core::ReweightMethod::kUniform;
  options.enable_bn = false;
  auto aqp = core::ThemisModel::Build(sample->Clone(), aggregates, options);
  THEMIS_CHECK(aqp.ok());
  // US State: IPF with the single state aggregate is exactly the manual
  // N_state / n_state reweighting of Sec 2.
  options.reweight = core::ReweightMethod::kIpf;
  auto state = core::ThemisModel::Build(sample->Clone(), aggregates, options);
  THEMIS_CHECK(state.ok());
  // Themis: reweighting plus the Bayesian-network model.
  options.enable_bn = true;
  auto themis = core::ThemisModel::Build(sample->Clone(), aggregates, options);
  THEMIS_CHECK(themis.ok());

  core::HybridEvaluator aqp_eval(&*aqp);
  core::HybridEvaluator state_eval(&*state);
  core::HybridEvaluator themis_eval(&*themis);

  const std::vector<size_t> attrs = {workload::FlightsAttrs::kElapsed,
                                     workload::FlightsAttrs::kOrigin};
  const auto& domain =
      population.schema()->domain(workload::FlightsAttrs::kOrigin);
  auto truth = population.GroupWeights(attrs);
  auto raw = sample->GroupWeights(attrs);

  std::printf("Short flights (E < 30 min) per origin state:\n");
  std::printf("  state    True      Raw      AQP  US State   Themis\n");
  for (const char* name : {"CA", "TX", "FL", "OH", "MT", "ME"}) {
    auto code = domain.Code(name);
    THEMIS_CHECK(code.ok());
    const data::TupleKey key = {0, *code};  // elapsed bucket [0,30)
    const double t = truth.count(key) ? truth.at(key) : 0;
    const double r = raw.count(key) ? raw.at(key) : 0;
    std::printf(
        "  %-5s %7.0f  %7.0f  %7.0f  %8.0f  %7.1f\n", name, t, r,
        aqp_eval.PointEstimate(attrs, key, core::AnswerMode::kSampleOnly)
            .ValueOr(0),
        state_eval.PointEstimate(attrs, key, core::AnswerMode::kSampleOnly)
            .ValueOr(0),
        themis_eval.PointEstimate(attrs, key).ValueOr(0));
  }
  std::printf(
      "\nRaw and AQP under/over-shoot; US State fixes represented states;\n"
      "Themis additionally answers for states the sample never saw.\n");
  return 0;
}
