// The support-mismatch use case (Sec 6.2's Corners / Sec 4.2's motivation):
// social-media-style datasets are 100%-biased samples — only users of the
// platform appear, so entire sub-populations are missing from the sample's
// support. Reweighting alone can never answer queries about them; Themis's
// hybrid falls back to Bayesian-network inference built from the
// population aggregates.
//
//   ./social_media_support
#include <cstdio>

#include "core/evaluator.h"
#include "core/model.h"
#include "stats/metrics.h"
#include "workload/flights.h"
#include "workload/sampler.h"

using namespace themis;
using workload::FlightsAttrs;

int main() {
  workload::FlightsConfig config;
  config.num_rows = 150000;
  data::Table population = workload::GenerateFlights(config);

  // 100%-biased sample: only flights leaving CA/NY/FL/WA are observed —
  // like a dataset collected from one platform's users only.
  auto sample = workload::MakeFlightsSample(population, "Corners", 0.1, 2);
  THEMIS_CHECK(sample.ok());

  // Published aggregates: 2D (informative for the BN) plus 1D marginals.
  aggregate::AggregateSet aggregates(population.schema());
  aggregates.Add(aggregate::ComputeAggregate(
      population, {FlightsAttrs::kOrigin, FlightsAttrs::kDistance}));
  aggregates.Add(aggregate::ComputeAggregate(
      population, {FlightsAttrs::kDest, FlightsAttrs::kDistance}));
  for (size_t attr : {FlightsAttrs::kDate, FlightsAttrs::kOrigin,
                      FlightsAttrs::kDest, FlightsAttrs::kElapsed,
                      FlightsAttrs::kDistance}) {
    aggregates.Add(aggregate::ComputeAggregate(population, {attr}));
  }

  core::ThemisOptions options;
  options.population_size = static_cast<double>(population.num_rows());
  auto model = core::ThemisModel::Build(sample->Clone(), aggregates, options);
  THEMIS_CHECK(model.ok()) << model.status().ToString();
  core::HybridEvaluator evaluator(&*model);

  // Ask about origins entirely OUTSIDE the sample's support.
  const auto& domain = population.schema()->domain(FlightsAttrs::kOrigin);
  auto truth = population.GroupWeights({FlightsAttrs::kOrigin});
  std::printf("Flights per origin state missing from the sample support:\n");
  std::printf("  state     True  IPF-only   Hybrid   (error%%)\n");
  for (const char* name : {"TX", "IL", "CO", "MT", "VT"}) {
    auto code = domain.Code(name);
    THEMIS_CHECK(code.ok());
    const data::TupleKey key = {*code};
    const double t = truth.at(key);
    const double ipf =
        evaluator
            .PointEstimate({FlightsAttrs::kOrigin}, key,
                           core::AnswerMode::kSampleOnly)
            .ValueOr(0);
    const double hybrid =
        evaluator.PointEstimate({FlightsAttrs::kOrigin}, key).ValueOr(0);
    std::printf("  %-5s  %7.0f  %8.0f  %7.0f   (%5.1f)\n", name, t, ipf,
                hybrid, stats::PercentDifference(t, hybrid));
  }
  std::printf(
      "\nIPF answers 0 for every unsupported state (the sample says they\n"
      "don't exist); the hybrid's BN recovers them from the aggregates.\n");
  return 0;
}
