// Quickstart: the paper's running example (Sec 2 / Example 3.1) in ~40
// lines of user code. A data scientist has a *biased* 4-row sample of a
// 10-flight population plus two published aggregates; Themis answers
// queries approximately as if they ran over the full population —
// including for tuples the sample never saw.
//
//   ./quickstart
#include <cstdio>

#include "core/themis_db.h"

using themis::core::ThemisDb;

int main() {
  // The population (what the data provider sees; we only use it here to
  // publish aggregates, as a statistics agency would).
  auto schema = std::make_shared<themis::data::Schema>();
  schema->AddAttribute("date", {"01", "02"});
  schema->AddAttribute("o_st", {"FL", "NC", "NY"});
  schema->AddAttribute("d_st", {"FL", "NC", "NY"});
  themis::data::Table population(schema);
  for (const auto& row : std::vector<std::vector<std::string>>{
           {"01", "FL", "FL"}, {"01", "FL", "FL"}, {"02", "FL", "NY"},
           {"01", "NC", "FL"}, {"02", "NC", "NY"}, {"02", "NC", "NY"},
           {"02", "NC", "NY"}, {"01", "NY", "FL"}, {"01", "NY", "NC"},
           {"02", "NY", "NY"}}) {
    population.AppendRowLabels(row);
  }

  // The biased sample the data scientist actually has.
  themis::data::Table sample(schema);
  for (const auto& row : std::vector<std::vector<std::string>>{
           {"01", "FL", "FL"}, {"01", "FL", "FL"}, {"02", "NC", "NY"},
           {"01", "NY", "NC"}}) {
    sample.AppendRowLabels(row);
  }

  // Open-world database: insert the sample and the aggregates, build.
  ThemisDb db;
  THEMIS_CHECK_OK(db.InsertSample("flights", std::move(sample)));
  THEMIS_CHECK_OK(db.InsertAggregateFrom("flights", population, {"date"}));
  THEMIS_CHECK_OK(
      db.InsertAggregateFrom("flights", population, {"o_st", "d_st"}));
  THEMIS_CHECK_OK(db.Build());

  // Point queries, answered as if over the population.
  for (const auto& [o, d] : std::vector<std::pair<std::string, std::string>>{
           {"FL", "FL"}, {"FL", "NY"}, {"NY", "NY"}}) {
    auto count = db.PointQuery({{"o_st", o}, {"d_st", d}});
    THEMIS_CHECK(count.ok()) << count.status().ToString();
    std::printf("flights %s -> %s : %.2f\n", o.c_str(), d.c_str(), *count);
  }

  // A GROUP BY over the open world: includes groups the sample is missing.
  auto result = db.Query(
      "SELECT o_st, d_st, COUNT(*) FROM flights GROUP BY o_st, d_st");
  THEMIS_CHECK(result.ok()) << result.status().ToString();
  std::printf("\n%s", result->ToString().c_str());
  return 0;
}
