// Classic population synthesis with IPF (Sec 4.1.2's heritage): calibrate
// a micro-sample of "households" to census-style marginal tables, then
// materialize an integer synthetic population and save it as CSV — the
// workflow demographers run against census reports, powered by Themis's
// reweighting substrate.
//
//   ./census_synthesis [output.csv]
#include <cstdio>

#include "data/csv.h"
#include "reweight/ipf.h"
#include "util/random.h"

using namespace themis;

int main(int argc, char** argv) {
  // "True" population of households: region x income x household size,
  // with correlated structure.
  auto schema = std::make_shared<data::Schema>();
  schema->AddAttribute("region", {"north", "south", "east", "west"});
  schema->AddAttribute("income", {"low", "mid", "high"});
  schema->AddAttribute("size", {"1", "2", "3+"});
  data::Table population(schema);
  Rng rng(4);
  const size_t n = 50000;
  for (size_t i = 0; i < n; ++i) {
    const auto region = static_cast<data::ValueCode>(
        rng.Categorical({0.2, 0.35, 0.15, 0.3}));
    // Income skews by region; size skews by income.
    const double high_income = region == 3 ? 0.35 : 0.15;
    const double r = rng.UniformDouble();
    const data::ValueCode income = r < 0.4 ? 0 : (r < 1.0 - high_income ? 1 : 2);
    const auto size = static_cast<data::ValueCode>(rng.Categorical(
        income == 2 ? std::vector<double>{0.2, 0.45, 0.35}
                    : std::vector<double>{0.4, 0.35, 0.25}));
    population.AppendRow({region, income, size});
  }

  // The micro-sample: 2%, biased towards the "north" region (easy to
  // survey, say).
  data::Table sample(schema);
  for (size_t r = 0; r < population.num_rows(); ++r) {
    const double keep = population.Get(r, 0) == 0 ? 0.05 : 0.012;
    if (rng.Bernoulli(keep)) {
      sample.AppendRow({population.Get(r, 0), population.Get(r, 1),
                        population.Get(r, 2)});
    }
  }

  // Census-style marginal tables: region x income, and household size.
  aggregate::AggregateSet aggregates(schema);
  aggregates.Add(aggregate::ComputeAggregate(population, {0, 1}));
  aggregates.Add(aggregate::ComputeAggregate(population, {2}));

  reweight::IpfReweighter ipf;
  THEMIS_CHECK_OK(ipf.Reweight(sample, aggregates, static_cast<double>(n)));
  std::printf("IPF converged=%d after %d sweeps (max violation %.2e)\n",
              ipf.stats().converged, ipf.stats().iterations,
              ipf.stats().max_violation);

  // Check calibration: region x income marginals now match the census.
  auto truth = population.GroupWeights({0, 1});
  auto calibrated = sample.GroupWeights({0, 1});
  std::printf("region/income    census  synthetic\n");
  for (const auto& [key, count] : truth) {
    std::printf("  %-6s %-5s  %7.0f    %7.1f\n",
                schema->domain(0).Label(key[0]).c_str(),
                schema->domain(1).Label(key[1]).c_str(), count,
                calibrated.count(key) ? calibrated.at(key) : 0.0);
  }

  // Materialize an integer synthetic population: replicate each sample
  // household round(w) times.
  data::Table synthetic(schema);
  for (size_t r = 0; r < sample.num_rows(); ++r) {
    const auto copies = static_cast<size_t>(sample.weight(r) + 0.5);
    for (size_t c = 0; c < copies; ++c) {
      synthetic.AppendRow(
          {sample.Get(r, 0), sample.Get(r, 1), sample.Get(r, 2)});
    }
  }
  std::printf("synthetic population: %zu households (target %zu)\n",
              synthetic.num_rows(), n);
  const std::string path = argc > 1 ? argv[1] : "synthetic_population.csv";
  THEMIS_CHECK_OK(data::WriteCsv(synthetic, path));
  std::printf("written to %s\n", path.c_str());
  return 0;
}
