// themis_cli — an end-to-end command-line open-world database: load a
// biased sample from CSV, load any number of published aggregate reports
// (CSV, header `attr[,attr...],count`), build the model, then answer SQL
// from the command line or an interactive prompt as if the queries ran
// over the population.
//
//   ./themis_cli SAMPLE.csv AGG1.csv [AGG2.csv ...] [--n POP_SIZE]
//                [--query 'SELECT ...'] [--serve [PORT]]
//
// Without --query, reads one SQL statement per line from stdin. With
// --serve, starts the TCP query server on 127.0.0.1:PORT (0 or omitted =
// ephemeral, printed) and serves the line-delimited JSON protocol (see
// README "Serving") until stdin closes or reads "quit"; shutdown drains
// in-flight requests.
//
// Demo (generates its own files):
//   ./themis_cli --demo
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>

#include "aggregate/aggregate_io.h"
#include "core/themis_db.h"
#include "data/csv.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/query_server.h"
#include "util/cpu_topology.h"
#include "workload/flights.h"
#include "workload/sampler.h"

using namespace themis;

int Main(int argc, const char** argv);

namespace {

int RunDemo() {
  // Write a sample + two aggregate reports to /tmp and re-read them, to
  // show the full file-based workflow.
  workload::FlightsConfig config;
  config.num_rows = 50000;
  data::Table population = workload::GenerateFlights(config);
  auto sample = workload::MakeFlightsSample(population, "SCorners", 0.1, 5);
  THEMIS_CHECK(sample.ok());
  THEMIS_CHECK_OK(data::WriteCsv(*sample, "/tmp/themis_demo_sample.csv"));
  auto agg1 = aggregate::ComputeAggregate(population,
                                          {workload::FlightsAttrs::kOrigin});
  auto agg2 = aggregate::ComputeAggregate(
      population,
      {workload::FlightsAttrs::kOrigin, workload::FlightsAttrs::kDest});
  THEMIS_CHECK_OK(aggregate::WriteAggregateCsv(
      agg1, *population.schema(), "/tmp/themis_demo_agg_origin.csv"));
  THEMIS_CHECK_OK(aggregate::WriteAggregateCsv(
      agg2, *population.schema(), "/tmp/themis_demo_agg_od.csv"));
  std::printf(
      "demo files written; replaying:\n"
      "  themis_cli /tmp/themis_demo_sample.csv "
      "/tmp/themis_demo_agg_origin.csv /tmp/themis_demo_agg_od.csv "
      "--n %zu --query 'SELECT origin_state, COUNT(*) FROM sample GROUP BY "
      "origin_state'\n\n",
      population.num_rows());
  const char* argv[] = {
      "themis_cli",
      "/tmp/themis_demo_sample.csv",
      "/tmp/themis_demo_agg_origin.csv",
      "/tmp/themis_demo_agg_od.csv",
      "--n",
      "50000",
      "--query",
      "SELECT origin_state, COUNT(*) FROM sample GROUP BY origin_state",
  };
  return Main(8, argv);
}

}  // namespace

int Main(int argc, const char** argv) {
  std::vector<std::string> files;
  std::string query;
  double population_size = 0;
  bool serve = false;
  long serve_port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) return RunDemo();
    if (std::strcmp(argv[i], "--query") == 0 && i + 1 < argc) {
      query = argv[++i];
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      population_size = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
      // Optional port operand (0 = ephemeral) — consumed only when the
      // next argument is entirely digits, so a data file like
      // "2023_aggs.csv" is never mistaken for a port.
      if (i + 1 < argc && argv[i + 1][0] != '\0') {
        char* end = nullptr;
        const long port = std::strtol(argv[i + 1], &end, 10);
        if (end != argv[i + 1] && *end == '\0') {
          serve_port = port;
          ++i;
        }
      }
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty() || serve_port < 0 || serve_port > 65535 ||
      (serve && !query.empty())) {
    if (serve && !query.empty()) {
      std::fprintf(stderr, "--query and --serve are mutually exclusive\n");
    }
    std::fprintf(stderr,
                 "usage: themis_cli SAMPLE.csv AGG.csv... [--n N] "
                 "[--query SQL | --serve [PORT]] | --demo\n");
    return 2;
  }

  auto sample = data::ReadCsv(files[0]);
  if (!sample.ok()) {
    std::fprintf(stderr, "error: %s\n", sample.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded sample: %zu rows, %zu attributes\n",
              sample->num_rows(), sample->num_attributes());

  core::ThemisOptions options;
  options.population_size = population_size;
  core::ThemisDb db(options);
  THEMIS_CHECK_OK(db.InsertSample("sample", sample->Clone()));
  for (size_t f = 1; f < files.size(); ++f) {
    auto spec = aggregate::ReadAggregateCsv(*sample->schema(), files[f]);
    if (!spec.ok()) {
      std::fprintf(stderr, "error in %s: %s\n", files[f].c_str(),
                   spec.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %s\n", spec->Describe(*sample->schema()).c_str());
    THEMIS_CHECK_OK(db.InsertAggregate("sample", std::move(spec).value()));
  }

  Status built = db.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.ToString().c_str());
    return 1;
  }
  std::printf("model built (population size %.0f)\n\n",
              db.model()->population_size());

  auto run = [&](const std::string& sql) {
    auto result = db.Query(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("%s\n", result->ToString().c_str());
  };

  if (!query.empty()) {
    run(query);
    return 0;
  }
  if (serve) {
    server::QueryServer::Options server_options;
    server_options.port = static_cast<uint16_t>(serve_port);
    server::QueryServer server(&db.catalog(), server_options);
    Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "serve failed: %s\n", started.ToString().c_str());
      return 1;
    }
    server::HostStats host = server::HostStatsNow();
    std::printf("host: %s simd=%s shard_target=%zuB\n",
                util::CpuTopology::Host().ToString().c_str(),
                host.simd_backend.c_str(), host.shard_target_bytes);
    std::printf(
        "serving on 127.0.0.1:%u — line-delimited JSON, e.g.\n"
        "  {\"sql\": \"SELECT ... FROM sample ...\"}\n"
        "  {\"verb\": \"stats\"}\n"
        "  {\"verb\": \"metrics\"}\n"
        "'metrics' on stdin prints the Prometheus exposition, 'slowlog'"
        " the worst traced requests; 'quit' stops with a drain; EOF"
        " (backgrounded/daemonized, stdin < /dev/null) serves until the"
        " process is terminated\n",
        server.port());
    // The operator commands go through a real loopback client, so what
    // they print is exactly what a scraper would see on the wire.
    const auto self_client = [&server]() {
      return server::Client::Connect(server.port());
    };
    std::string line;
    bool quit_requested = false;
    while (std::getline(std::cin, line)) {
      if (line == "quit" || line == "exit") {
        quit_requested = true;
        break;
      }
      if (line == "metrics") {
        auto client = self_client();
        auto text = client.ok() ? client->Metrics()
                                : Result<std::string>(client.status());
        if (text.ok()) {
          std::fputs(text->c_str(), stdout);
        } else {
          std::fprintf(stderr, "metrics failed: %s\n",
                       text.status().ToString().c_str());
        }
        continue;
      }
      if (line == "slowlog") {
        auto client = self_client();
        auto stats = client.ok() ? client->Stats()
                                 : Result<server::ServerStats>(client.status());
        if (!stats.ok()) {
          std::fprintf(stderr, "stats failed: %s\n",
                       stats.status().ToString().c_str());
          continue;
        }
        if (stats->slow_queries.empty()) {
          std::printf("slow-query log is empty (enable tracing with "
                      "trace_sample_n / slow_query_ms)\n");
          continue;
        }
        for (const obs::SlowQueryEntry& entry : stats->slow_queries) {
          std::printf("%.3f ms  [%s]  relation=%s  fingerprint=%s\n  %s\n",
                      entry.total_ns / 1e6, entry.status.c_str(),
                      entry.relation.c_str(), entry.fingerprint.c_str(),
                      entry.sql.c_str());
          for (size_t i = 0; i < obs::kNumStages; ++i) {
            const obs::StageSpan& span = entry.stages[i];
            if (span.count == 0) continue;
            std::printf("    %-18s %9.3f ms  (x%llu)\n",
                        obs::StageName(static_cast<obs::Stage>(i)),
                        span.total_ns / 1e6,
                        static_cast<unsigned long long>(span.count));
          }
        }
        continue;
      }
    }
    if (!quit_requested) {
      // stdin closed without a quit: a backgrounded server would
      // otherwise stop before the first client connects. Park forever;
      // process termination is the shutdown signal in that mode.
      std::promise<void>().get_future().wait();
    }
    server.Stop();
    std::printf("server stopped\n");
    return 0;
  }
  std::string line;
  std::printf("themis> ");
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (!line.empty()) run(line);
    std::printf("themis> ");
  }
  return 0;
}

int main(int argc, const char** argv) { return Main(argc, argv); }
